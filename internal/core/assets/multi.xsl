<?xml version="1.0" encoding="UTF-8"?>
<!--
  multi.xsl : XSLT 1.1 presentation of a goldmodel document as a
  collection of linked HTML pages, one per fact class, dimension class,
  hierarchy level and cube class (the paper's §4 second approach, using
  xsl:document; navigation as in Fig. 6).

  Parameters:
    focus - a fact class id; when set, the presentation contains only that
            fact class and the dimensions it aggregates (Fig. 5).
    css   - href of the stylesheet linked from every page.
-->
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.1">
  <xsl:output method="html" indent="yes"/>
  <xsl:param name="focus" select="''"/>
  <xsl:param name="css" select="'style.css'"/>

  <!-- =================== main page (Fig. 6.1) =================== -->
  <xsl:template match="/goldmodel">
    <html>
      <head>
        <title>MD model: <xsl:value-of select="@name"/></title>
        <link rel="stylesheet" type="text/css" href="{$css}"/>
      </head>
      <body>
        <h1>Multidimensional model: <xsl:value-of select="@name"/></h1>
        <xsl:if test="$focus != ''">
          <p><span class="flag">Presentation:</span> fact class
          <xsl:text> </xsl:text><xsl:value-of select="id($focus)/@name"/> only</p>
        </xsl:if>
        <table class="meta">
          <tr><th>Name</th><td><xsl:value-of select="@name"/></td></tr>
          <xsl:if test="@creationdate">
            <tr><th>Creation date</th><td><xsl:value-of select="@creationdate"/></td></tr>
          </xsl:if>
          <xsl:if test="@lastmodified">
            <tr><th>Last modified</th><td><xsl:value-of select="@lastmodified"/></td></tr>
          </xsl:if>
          <xsl:if test="@responsible">
            <tr><th>Responsible</th><td><xsl:value-of select="@responsible"/></td></tr>
          </xsl:if>
          <xsl:if test="@description">
            <tr><th>Description</th><td><xsl:value-of select="@description"/></td></tr>
          </xsl:if>
        </table>

        <h2>Fact classes</h2>
        <table class="list">
          <tr><th>Fact class</th><th>Measures</th><th>Dimensions</th><th>Description</th></tr>
          <xsl:for-each select="factclasses/factclass">
            <xsl:sort select="@name"/>
            <xsl:if test="$focus = '' or @id = $focus">
              <tr>
                <td><a href="{@id}.html"><xsl:value-of select="@name"/></a></td>
                <td><xsl:value-of select="count(factatts/factatt)"/></td>
                <td><xsl:value-of select="count(sharedaggs/sharedagg)"/></td>
                <td><xsl:value-of select="@description"/></td>
              </tr>
              <xsl:call-template name="fact-page"/>
            </xsl:if>
          </xsl:for-each>
        </table>

        <h2>Dimension classes</h2>
        <table class="list">
          <tr><th>Dimension class</th><th>Levels</th><th>Time</th><th>Description</th></tr>
          <xsl:for-each select="dimclasses/dimclass">
            <xsl:sort select="@name"/>
            <xsl:if test="$focus = '' or /goldmodel/factclasses/factclass[@id = $focus]/sharedaggs/sharedagg[@dimclass = current()/@id]">
              <tr>
                <td><a href="{@id}.html"><xsl:value-of select="@name"/></a></td>
                <td><xsl:value-of select="count(asoclevels/asoclevel)"/></td>
                <td>
                  <xsl:if test="@istime = 'true'"><span class="flag">time</span></xsl:if>
                </td>
                <td><xsl:value-of select="@description"/></td>
              </tr>
              <xsl:call-template name="dim-page"/>
            </xsl:if>
          </xsl:for-each>
        </table>

        <xsl:if test="cubeclasses/cubeclass[$focus = '' or @factclass = $focus]">
          <h2>Cube classes</h2>
          <table class="list">
            <tr><th>Cube class</th><th>Fact class</th><th>Description</th></tr>
            <xsl:for-each select="cubeclasses/cubeclass">
              <xsl:sort select="@name"/>
              <xsl:if test="$focus = '' or @factclass = $focus">
                <tr>
                  <td><a href="{@id}.html"><xsl:value-of select="@name"/></a></td>
                  <td><a href="{@factclass}.html"><xsl:value-of select="id(@factclass)/@name"/></a></td>
                  <td><xsl:value-of select="@description"/></td>
                </tr>
                <xsl:call-template name="cube-page"/>
              </xsl:if>
            </xsl:for-each>
          </table>
        </xsl:if>

        <xsl:call-template name="footer"/>
      </body>
    </html>
  </xsl:template>

  <!-- =================== fact class page (Fig. 6.2) =================== -->
  <xsl:template name="fact-page">
    <xsl:document href="{@id}.html">
      <html>
        <head>
          <title>Fact class: <xsl:value-of select="@name"/></title>
          <link rel="stylesheet" type="text/css" href="{$css}"/>
        </head>
        <body>
          <p class="nav"><a href="index.html">&#171; Model</a></p>
          <h1>Fact class: <xsl:value-of select="@name"/></h1>
          <xsl:if test="@description"><p><xsl:value-of select="@description"/></p></xsl:if>

          <h2>Measures</h2>
          <xsl:choose>
            <xsl:when test="factatts/factatt">
              <table>
                <tr><th>Name</th><th>Type</th><th>OID</th><th>Derived</th><th>Derivation rule</th><th>Additivity</th><th>Description</th></tr>
                <xsl:apply-templates select="factatts/factatt"/>
              </table>
              <xsl:for-each select="factatts/factatt[additivity]">
                <xsl:call-template name="additivity-page"/>
              </xsl:for-each>
            </xsl:when>
            <xsl:otherwise><p>No measures: a fact-less fact class.</p></xsl:otherwise>
          </xsl:choose>

          <xsl:call-template name="methods-table"/>

          <h2>Shared aggregations (dimensions)</h2>
          <table>
            <tr><th>Dimension</th><th>Fact role</th><th>Dimension role</th><th>Kind</th></tr>
            <xsl:for-each select="sharedaggs/sharedagg">
              <xsl:sort select="id(@dimclass)/@name"/>
              <tr>
                <td><a href="{@dimclass}.html"><xsl:value-of select="id(@dimclass)/@name"/></a></td>
                <td><xsl:call-template name="mult"><xsl:with-param name="v" select="@rolea"/><xsl:with-param name="def" select="'M'"/></xsl:call-template></td>
                <td><xsl:call-template name="mult"><xsl:with-param name="v" select="@roleb"/><xsl:with-param name="def" select="'1'"/></xsl:call-template></td>
                <td>
                  <xsl:if test="(@rolea = 'M' or @rolea = '1..M' or not(@rolea)) and (@roleb = 'M' or @roleb = '1..M')">
                    <span class="flag">many-to-many</span>
                  </xsl:if>
                </td>
              </tr>
            </xsl:for-each>
          </table>

          <xsl:if test="factatts/factatt[@isoid = 'true']">
            <h2>Degenerate dimensions</h2>
            <p>Identifying measures providing fact features beyond the measures for analysis:</p>
            <ul>
              <xsl:for-each select="factatts/factatt[@isoid = 'true']">
                <li><xsl:value-of select="@name"/> {OID}</li>
              </xsl:for-each>
            </ul>
          </xsl:if>

          <xsl:call-template name="footer"/>
        </body>
      </html>
    </xsl:document>
  </xsl:template>

  <!-- measure row, after the paper's factatt template -->
  <xsl:template match="factatt">
    <tr class="measure">
      <td><xsl:value-of select="@name"/><xsl:if test="@isoid = 'true'"> {OID}</xsl:if></td>
      <td><xsl:value-of select="@type"/></td>
      <td><xsl:if test="@isoid = 'true'">yes</xsl:if></td>
      <td><xsl:if test="@derived = 'true'">/</xsl:if></td>
      <td><xsl:value-of select="@derivationrule"/></td>
      <td>
        <xsl:choose>
          <xsl:when test="additivity">
            <a href="{../../@id}-{@id}-add.html">rules</a>
          </xsl:when>
          <xsl:otherwise>additive</xsl:otherwise>
        </xsl:choose>
      </td>
      <td><xsl:value-of select="@description"/></td>
    </tr>
  </xsl:template>

  <!-- additivity rules floating page (Fig. 6.3); context: factatt -->
  <xsl:template name="additivity-page">
    <xsl:document href="{../../@id}-{@id}-add.html">
      <html>
        <head>
          <title>Additivity: <xsl:value-of select="@name"/></title>
          <link rel="stylesheet" type="text/css" href="{$css}"/>
        </head>
        <body>
          <p class="nav">
            <a href="index.html">&#171; Model</a>
            <a href="{../../@id}.html">&#171; Fact class <xsl:value-of select="../../@name"/></a>
          </p>
          <h1>Additivity rules: <xsl:value-of select="@name"/></h1>
          <div class="additivity">
            <table>
              <tr><th>Along dimension</th><th>Allowed aggregations</th></tr>
              <xsl:for-each select="additivity">
                <tr>
                  <td><a href="{@dimclass}.html"><xsl:value-of select="id(@dimclass)/@name"/></a></td>
                  <td>
                    <xsl:choose>
                      <xsl:when test="@isnot = 'true'"><span class="warn">not additive</span></xsl:when>
                      <xsl:otherwise>
                        <xsl:if test="@issum = 'true'">SUM </xsl:if>
                        <xsl:if test="@ismax = 'true'">MAX </xsl:if>
                        <xsl:if test="@ismin = 'true'">MIN </xsl:if>
                        <xsl:if test="@isavg = 'true'">AVG </xsl:if>
                        <xsl:if test="@iscount = 'true'">COUNT </xsl:if>
                      </xsl:otherwise>
                    </xsl:choose>
                  </td>
                </tr>
              </xsl:for-each>
            </table>
          </div>
          <xsl:call-template name="footer"/>
        </body>
      </html>
    </xsl:document>
  </xsl:template>

  <!-- =================== dimension class page (Fig. 6.4) =================== -->
  <xsl:template name="dim-page">
    <xsl:document href="{@id}.html">
      <html>
        <head>
          <title>Dimension class: <xsl:value-of select="@name"/></title>
          <link rel="stylesheet" type="text/css" href="{$css}"/>
        </head>
        <body>
          <p class="nav"><a href="index.html">&#171; Model</a></p>
          <h1>Dimension class: <xsl:value-of select="@name"/>
            <xsl:if test="@istime = 'true'"><xsl:text> </xsl:text><span class="flag">{time}</span></xsl:if>
          </h1>
          <xsl:if test="@description"><p><xsl:value-of select="@description"/></p></xsl:if>

          <xsl:call-template name="dimatts-table"/>
          <xsl:call-template name="methods-table"/>

          <h2>Association levels</h2>
          <xsl:choose>
            <xsl:when test="asoclevels/asoclevel">
              <table>
                <tr><th>Level</th><th>Attributes</th><th>Description</th></tr>
                <xsl:for-each select="asoclevels/asoclevel">
                  <tr>
                    <td><a href="{@id}.html"><xsl:value-of select="@name"/></a></td>
                    <td><xsl:value-of select="count(dimatts/dimatt)"/></td>
                    <td><xsl:value-of select="@description"/></td>
                  </tr>
                  <xsl:call-template name="level-page"/>
                </xsl:for-each>
              </table>
              <h2>Classification hierarchy {dag}</h2>
              <ul>
                <xsl:for-each select="relationasocs/relationasoc">
                  <li>
                    <xsl:value-of select="../../@name"/>
                    <xsl:text> &#8594; </xsl:text>
                    <a href="{@child}.html"><xsl:value-of select="id(@child)/@name"/></a>
                    <xsl:call-template name="assoc-flags"/>
                  </li>
                </xsl:for-each>
              </ul>
            </xsl:when>
            <xsl:otherwise><p>No classification hierarchy.</p></xsl:otherwise>
          </xsl:choose>

          <xsl:if test="catlevels/catlevel">
            <h2>Categorization levels</h2>
            <table>
              <tr><th>Level</th><th>Attributes</th><th>Description</th></tr>
              <xsl:for-each select="catlevels/catlevel">
                <tr>
                  <td><xsl:value-of select="@name"/></td>
                  <td>
                    <xsl:for-each select="dimatts/dimatt">
                      <xsl:value-of select="@name"/><xsl:text> </xsl:text>
                    </xsl:for-each>
                  </td>
                  <td><xsl:value-of select="@description"/></td>
                </tr>
              </xsl:for-each>
            </table>
          </xsl:if>

          <h2>Aggregated by fact classes</h2>
          <ul>
            <xsl:for-each select="/goldmodel/factclasses/factclass[sharedaggs/sharedagg/@dimclass = current()/@id]">
              <xsl:if test="$focus = '' or @id = $focus">
                <li><a href="{@id}.html"><xsl:value-of select="@name"/></a></li>
              </xsl:if>
            </xsl:for-each>
          </ul>

          <xsl:call-template name="footer"/>
        </body>
      </html>
    </xsl:document>
  </xsl:template>

  <!-- =================== hierarchy level page =================== -->
  <xsl:template name="level-page">
    <xsl:document href="{@id}.html">
      <html>
        <head>
          <title>Level: <xsl:value-of select="@name"/></title>
          <link rel="stylesheet" type="text/css" href="{$css}"/>
        </head>
        <body>
          <p class="nav">
            <a href="index.html">&#171; Model</a>
            <a href="{ancestor::dimclass/@id}.html">&#171; Dimension <xsl:value-of select="ancestor::dimclass/@name"/></a>
          </p>
          <h1>Classification level: <xsl:value-of select="@name"/></h1>
          <xsl:if test="@description"><p><xsl:value-of select="@description"/></p></xsl:if>

          <xsl:call-template name="dimatts-table"/>
          <xsl:call-template name="methods-table"/>

          <h2>Rolls up to</h2>
          <xsl:choose>
            <xsl:when test="relationasocs/relationasoc">
              <ul>
                <xsl:for-each select="relationasocs/relationasoc">
                  <li>
                    <a href="{@child}.html"><xsl:value-of select="id(@child)/@name"/></a>
                    <xsl:call-template name="assoc-flags"/>
                  </li>
                </xsl:for-each>
              </ul>
            </xsl:when>
            <xsl:otherwise><p>Top of the hierarchy.</p></xsl:otherwise>
          </xsl:choose>

          <h2>Reached from</h2>
          <ul>
            <xsl:if test="ancestor::dimclass/relationasocs/relationasoc[@child = current()/@id]">
              <li><a href="{ancestor::dimclass/@id}.html"><xsl:value-of select="ancestor::dimclass/@name"/></a> (dimension class)</li>
            </xsl:if>
            <xsl:for-each select="ancestor::dimclass/asoclevels/asoclevel[relationasocs/relationasoc/@child = current()/@id]">
              <li><a href="{@id}.html"><xsl:value-of select="@name"/></a></li>
            </xsl:for-each>
          </ul>

          <xsl:call-template name="footer"/>
        </body>
      </html>
    </xsl:document>
  </xsl:template>

  <!-- =================== cube class page =================== -->
  <xsl:template name="cube-page">
    <xsl:document href="{@id}.html">
      <html>
        <head>
          <title>Cube class: <xsl:value-of select="@name"/></title>
          <link rel="stylesheet" type="text/css" href="{$css}"/>
        </head>
        <body>
          <p class="nav">
            <a href="index.html">&#171; Model</a>
            <a href="{@factclass}.html">&#171; Fact class <xsl:value-of select="id(@factclass)/@name"/></a>
          </p>
          <h1>Cube class: <xsl:value-of select="@name"/></h1>
          <xsl:if test="@description"><p><xsl:value-of select="@description"/></p></xsl:if>

          <h2>Measures</h2>
          <ul>
            <xsl:for-each select="measures/measure">
              <li><xsl:value-of select="id(@factatt)/@name"/></li>
            </xsl:for-each>
          </ul>

          <xsl:if test="slices/slice">
            <h2>Slice</h2>
            <table>
              <tr><th>Attribute</th><th>Operator</th><th>Value</th></tr>
              <xsl:for-each select="slices/slice">
                <tr>
                  <td><xsl:value-of select="id(@att)/@name"/></td>
                  <td><xsl:call-template name="op"/></td>
                  <td><xsl:value-of select="@value"/></td>
                </tr>
              </xsl:for-each>
            </table>
          </xsl:if>

          <xsl:if test="dices/dice">
            <h2>Dice</h2>
            <ul>
              <xsl:for-each select="dices/dice">
                <li>
                  <a href="{@dimclass}.html"><xsl:value-of select="id(@dimclass)/@name"/></a>
                  <xsl:if test="@level">
                    <xsl:text> / </xsl:text>
                    <a href="{@level}.html"><xsl:value-of select="id(@level)/@name"/></a>
                  </xsl:if>
                </li>
              </xsl:for-each>
            </ul>
          </xsl:if>

          <xsl:call-template name="footer"/>
        </body>
      </html>
    </xsl:document>
  </xsl:template>

  <!-- =================== shared fragments =================== -->

  <!-- attribute table for dimclass / asoclevel contexts -->
  <xsl:template name="dimatts-table">
    <h2>Attributes</h2>
    <xsl:choose>
      <xsl:when test="dimatts/dimatt">
        <table>
          <tr><th>Name</th><th>Type</th><th>OID</th><th>D</th><th>Description</th></tr>
          <xsl:for-each select="dimatts/dimatt">
            <tr>
              <td><xsl:value-of select="@name"/></td>
              <td><xsl:value-of select="@type"/></td>
              <td><xsl:if test="@isoid = 'true'">{OID}</xsl:if></td>
              <td><xsl:if test="@isd = 'true'">{D}</xsl:if></td>
              <td><xsl:value-of select="@description"/></td>
            </tr>
          </xsl:for-each>
        </table>
      </xsl:when>
      <xsl:otherwise><p>No attributes.</p></xsl:otherwise>
    </xsl:choose>
  </xsl:template>

  <xsl:template name="methods-table">
    <xsl:if test="methods/method">
      <h2>Methods</h2>
      <table>
        <tr><th>Name</th><th>Signature</th><th>Description</th></tr>
        <xsl:for-each select="methods/method">
          <tr>
            <td><xsl:value-of select="@name"/></td>
            <td><xsl:value-of select="@signature"/></td>
            <td><xsl:value-of select="@description"/></td>
          </tr>
        </xsl:for-each>
      </table>
    </xsl:if>
  </xsl:template>

  <!-- strictness / completeness flags of an association; context: relationasoc -->
  <xsl:template name="assoc-flags">
    <xsl:if test="@rolea = 'M' or @rolea = '1..M'">
      <xsl:text> </xsl:text><span class="flag">non-strict</span>
    </xsl:if>
    <xsl:if test="@completeness = 'true'">
      <xsl:text> </xsl:text><span class="flag">{completeness}</span>
    </xsl:if>
  </xsl:template>

  <!-- multiplicity with default; absent attributes fall back to the
       schema's default values -->
  <xsl:template name="mult">
    <xsl:param name="v"/>
    <xsl:param name="def"/>
    <xsl:choose>
      <xsl:when test="string($v) != ''"><xsl:value-of select="$v"/></xsl:when>
      <xsl:otherwise><xsl:value-of select="$def"/></xsl:otherwise>
    </xsl:choose>
  </xsl:template>

  <xsl:template name="op">
    <xsl:choose>
      <xsl:when test="@operator = 'EQ'">=</xsl:when>
      <xsl:when test="@operator = 'LT'">&lt;</xsl:when>
      <xsl:when test="@operator = 'GT'">&gt;</xsl:when>
      <xsl:when test="@operator = 'LET'">&lt;=</xsl:when>
      <xsl:when test="@operator = 'GET'">&gt;=</xsl:when>
      <xsl:when test="@operator = 'NOTEQ'">!=</xsl:when>
      <xsl:otherwise><xsl:value-of select="@operator"/></xsl:otherwise>
    </xsl:choose>
  </xsl:template>

  <xsl:template name="footer">
    <p class="footer">Generated from the conceptual multidimensional model
      <xsl:text> </xsl:text><xsl:value-of select="/goldmodel/@name"/> by goldweb.</p>
  </xsl:template>
</xsl:stylesheet>
