package core

import (
	"flag"
	"os"
	"testing"

	"goldweb/internal/xsd"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestSchemaTreeGolden locks the Fig. 2 artifact: the canonical schema
// rendered as a tree. Regenerate with `go test ./internal/core -update`
// after an intentional schema change.
func TestSchemaTreeGolden(t *testing.T) {
	got := xsd.Tree(MustSchema(), xsd.TreeOptions{ShowAttributes: true})
	const path = "testdata/schema_tree.golden"
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("schema tree drifted from the golden file; run with -update if intentional\n--- got ---\n%s", got)
	}
}
