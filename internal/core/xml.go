package core

import (
	"fmt"
	"time"

	"goldweb/internal/xmldom"
)

// dateLayout is the xsd:date lexical form used by creationdate and
// lastmodified.
const dateLayout = "2006-01-02"

// ToXML renders the model as a goldmodel document conforming to the
// canonical XML Schema, the way the paper's CASE tool exports models
// (Fig. 3).
func (m *Model) ToXML() *xmldom.Node {
	doc := xmldom.NewDocument()
	root := doc.AddElement("goldmodel")
	setAttr(root, "id", m.ID)
	setAttr(root, "name", m.Name)
	if !m.ShowAtts {
		root.SetAttr("showatts", "false")
	}
	if !m.ShowMethods {
		root.SetAttr("showmethods", "false")
	}
	if !m.CreationDate.IsZero() {
		root.SetAttr("creationdate", m.CreationDate.Format(dateLayout))
	}
	if !m.LastModified.IsZero() {
		root.SetAttr("lastmodified", m.LastModified.Format(dateLayout))
	}
	setAttr(root, "description", m.Description)
	setAttr(root, "responsible", m.Responsible)

	facts := root.AddElement("factclasses")
	for _, f := range m.Facts {
		marshalFact(facts, f)
	}
	dims := root.AddElement("dimclasses")
	for _, d := range m.Dims {
		marshalDim(dims, d)
	}
	if len(m.Cubes) > 0 {
		cubes := root.AddElement("cubeclasses")
		for _, c := range m.Cubes {
			marshalCube(cubes, c)
		}
	}
	return doc
}

// XMLString is ToXML serialized with an XML declaration.
func (m *Model) XMLString() string {
	return xmldom.SerializeToString(m.ToXML(), xmldom.WriteOptions{})
}

// PrettyXML is ToXML pretty-printed, the way a browser displays the
// document without a stylesheet (Fig. 4).
func (m *Model) PrettyXML() string {
	return xmldom.Pretty(m.ToXML())
}

func setAttr(e *xmldom.Node, name, v string) {
	if v != "" {
		e.SetAttr(name, v)
	}
}

func setBool(e *xmldom.Node, name string, v bool) {
	if v {
		e.SetAttr(name, "true")
	}
}

func marshalFact(parent *xmldom.Node, f *FactClass) {
	e := parent.AddElement("factclass")
	setAttr(e, "id", f.ID)
	setAttr(e, "name", f.Name)
	setAttr(e, "caption", f.Caption)
	setAttr(e, "description", f.Description)
	if len(f.Atts) > 0 {
		atts := e.AddElement("factatts")
		for _, a := range f.Atts {
			ae := atts.AddElement("factatt")
			setAttr(ae, "id", a.ID)
			setAttr(ae, "name", a.Name)
			setAttr(ae, "type", a.Type)
			setBool(ae, "isoid", a.IsOID)
			setBool(ae, "derived", a.IsDerived)
			setAttr(ae, "derivationrule", a.DerivationRule)
			setBool(ae, "atomic", a.IsAtomic)
			setAttr(ae, "description", a.Description)
			for _, r := range a.Additivity {
				re := ae.AddElement("additivity")
				setAttr(re, "dimclass", r.DimClass)
				setBool(re, "isnot", r.IsNot)
				setBool(re, "issum", r.IsSUM)
				setBool(re, "ismax", r.IsMAX)
				setBool(re, "ismin", r.IsMIN)
				setBool(re, "isavg", r.IsAVG)
				setBool(re, "iscount", r.IsCOUNT)
			}
		}
	}
	marshalMethods(e, f.Methods)
	if len(f.SharedAggs) > 0 {
		aggs := e.AddElement("sharedaggs")
		for _, a := range f.SharedAggs {
			ae := aggs.AddElement("sharedagg")
			setAttr(ae, "dimclass", a.DimClass)
			setAttr(ae, "name", a.Name)
			setAttr(ae, "description", a.Description)
			if a.RoleA != "" {
				ae.SetAttr("rolea", string(a.RoleA))
			}
			if a.RoleB != "" {
				ae.SetAttr("roleb", string(a.RoleB))
			}
		}
	}
}

func marshalMethods(parent *xmldom.Node, methods []*Method) {
	if len(methods) == 0 {
		return
	}
	ms := parent.AddElement("methods")
	for _, meth := range methods {
		me := ms.AddElement("method")
		setAttr(me, "id", meth.ID)
		setAttr(me, "name", meth.Name)
		setAttr(me, "signature", meth.Signature)
		setAttr(me, "description", meth.Description)
	}
}

func marshalDimAtts(parent *xmldom.Node, atts []*DimAtt) {
	if len(atts) == 0 {
		return
	}
	as := parent.AddElement("dimatts")
	for _, a := range atts {
		ae := as.AddElement("dimatt")
		setAttr(ae, "id", a.ID)
		setAttr(ae, "name", a.Name)
		setAttr(ae, "type", a.Type)
		setBool(ae, "isoid", a.IsOID)
		setBool(ae, "isd", a.IsD)
		setAttr(ae, "description", a.Description)
	}
}

func marshalAssocs(parent *xmldom.Node, assocs []*Association) {
	if len(assocs) == 0 {
		return
	}
	rs := parent.AddElement("relationasocs")
	for _, a := range assocs {
		re := rs.AddElement("relationasoc")
		setAttr(re, "child", a.Child)
		setAttr(re, "name", a.Name)
		setAttr(re, "description", a.Description)
		if a.RoleA != "" {
			re.SetAttr("rolea", string(a.RoleA))
		}
		if a.RoleB != "" {
			re.SetAttr("roleb", string(a.RoleB))
		}
		setBool(re, "completeness", a.Completeness)
	}
}

func marshalDim(parent *xmldom.Node, d *DimClass) {
	e := parent.AddElement("dimclass")
	setAttr(e, "id", d.ID)
	setAttr(e, "name", d.Name)
	setAttr(e, "caption", d.Caption)
	setAttr(e, "description", d.Description)
	setBool(e, "istime", d.IsTime)
	marshalDimAtts(e, d.Atts)
	if len(d.Levels) > 0 {
		ls := e.AddElement("asoclevels")
		for _, l := range d.Levels {
			le := ls.AddElement("asoclevel")
			setAttr(le, "id", l.ID)
			setAttr(le, "name", l.Name)
			setAttr(le, "caption", l.Caption)
			setAttr(le, "description", l.Description)
			marshalDimAtts(le, l.Atts)
			marshalAssocs(le, l.Associations)
			marshalMethods(le, l.Methods)
		}
	}
	marshalAssocs(e, d.Associations)
	if len(d.CatLevels) > 0 {
		cs := e.AddElement("catlevels")
		for _, cl := range d.CatLevels {
			ce := cs.AddElement("catlevel")
			setAttr(ce, "id", cl.ID)
			setAttr(ce, "name", cl.Name)
			setAttr(ce, "description", cl.Description)
			marshalDimAtts(ce, cl.Atts)
		}
	}
	marshalMethods(e, d.Methods)
}

func marshalCube(parent *xmldom.Node, c *CubeClass) {
	e := parent.AddElement("cubeclass")
	setAttr(e, "id", c.ID)
	setAttr(e, "name", c.Name)
	setAttr(e, "description", c.Description)
	setAttr(e, "factclass", c.Fact)
	if len(c.Measures) > 0 {
		ms := e.AddElement("measures")
		for _, mid := range c.Measures {
			ms.AddElement("measure").SetAttr("factatt", mid)
		}
	}
	if len(c.Slices) > 0 {
		ss := e.AddElement("slices")
		for _, s := range c.Slices {
			se := ss.AddElement("slice")
			setAttr(se, "att", s.Att)
			se.SetAttr("operator", string(s.Operator))
			se.SetAttr("value", s.Value)
		}
	}
	if len(c.Dices) > 0 {
		ds := e.AddElement("dices")
		for _, dd := range c.Dices {
			de := ds.AddElement("dice")
			setAttr(de, "dimclass", dd.DimClass)
			setAttr(de, "level", dd.Level)
		}
	}
}

// ---- unmarshal ----

// ModelFromXML reads a goldmodel document back into a Model. It applies
// the schema's attribute defaults itself, so a document need not have
// been default-expanded by validation first.
func ModelFromXML(doc *xmldom.Node) (*Model, error) {
	root := doc.DocumentElement()
	if root == nil || root.Name != "goldmodel" {
		return nil, fmt.Errorf("core: document root is not goldmodel")
	}
	m := &Model{
		ID:          root.AttrValue("id"),
		Name:        root.AttrValue("name"),
		ShowAtts:    attrBool(root, "showatts", true),
		ShowMethods: attrBool(root, "showmethods", true),
		Description: root.AttrValue("description"),
		Responsible: root.AttrValue("responsible"),
	}
	var err error
	if m.CreationDate, err = attrDate(root, "creationdate"); err != nil {
		return nil, err
	}
	if m.LastModified, err = attrDate(root, "lastmodified"); err != nil {
		return nil, err
	}
	if fcs := root.FirstElement("factclasses"); fcs != nil {
		for _, fe := range fcs.ElementsByName("factclass") {
			m.Facts = append(m.Facts, unmarshalFact(fe))
		}
	}
	if dcs := root.FirstElement("dimclasses"); dcs != nil {
		for _, de := range dcs.ElementsByName("dimclass") {
			m.Dims = append(m.Dims, unmarshalDim(de))
		}
	}
	if ccs := root.FirstElement("cubeclasses"); ccs != nil {
		for _, ce := range ccs.ElementsByName("cubeclass") {
			m.Cubes = append(m.Cubes, unmarshalCube(ce))
		}
	}
	return m, nil
}

// ModelFromXMLString parses and unmarshals model XML text.
func ModelFromXMLString(src string) (*Model, error) {
	doc, err := xmldom.ParseString(src)
	if err != nil {
		return nil, err
	}
	return ModelFromXML(doc)
}

func attrBool(e *xmldom.Node, name string, def bool) bool {
	a := e.GetAttr(name)
	if a == nil {
		return def
	}
	return a.Data == "true" || a.Data == "1"
}

func attrDate(e *xmldom.Node, name string) (time.Time, error) {
	v := e.AttrValue(name)
	if v == "" {
		return time.Time{}, nil
	}
	t, err := time.Parse(dateLayout, v)
	if err != nil {
		return time.Time{}, fmt.Errorf("core: bad %s: %v", name, err)
	}
	return t, nil
}

func attrMult(e *xmldom.Node, name string, def Multiplicity) Multiplicity {
	if v := e.AttrValue(name); v != "" {
		return Multiplicity(v)
	}
	return def
}

func unmarshalFact(e *xmldom.Node) *FactClass {
	f := &FactClass{
		ID:          e.AttrValue("id"),
		Name:        e.AttrValue("name"),
		Caption:     e.AttrValue("caption"),
		Description: e.AttrValue("description"),
	}
	if atts := e.FirstElement("factatts"); atts != nil {
		for _, ae := range atts.ElementsByName("factatt") {
			a := &FactAtt{
				ID:             ae.AttrValue("id"),
				Name:           ae.AttrValue("name"),
				Type:           ae.AttrValue("type"),
				IsOID:          attrBool(ae, "isoid", false),
				IsDerived:      attrBool(ae, "derived", false),
				DerivationRule: ae.AttrValue("derivationrule"),
				IsAtomic:       attrBool(ae, "atomic", false),
				Description:    ae.AttrValue("description"),
			}
			for _, re := range ae.ElementsByName("additivity") {
				a.Additivity = append(a.Additivity, &AdditivityRule{
					DimClass: re.AttrValue("dimclass"),
					IsNot:    attrBool(re, "isnot", false),
					IsSUM:    attrBool(re, "issum", false),
					IsMAX:    attrBool(re, "ismax", false),
					IsMIN:    attrBool(re, "ismin", false),
					IsAVG:    attrBool(re, "isavg", false),
					IsCOUNT:  attrBool(re, "iscount", false),
				})
			}
			f.Atts = append(f.Atts, a)
		}
	}
	f.Methods = unmarshalMethods(e)
	if aggs := e.FirstElement("sharedaggs"); aggs != nil {
		for _, ae := range aggs.ElementsByName("sharedagg") {
			f.SharedAggs = append(f.SharedAggs, &SharedAgg{
				DimClass:    ae.AttrValue("dimclass"),
				Name:        ae.AttrValue("name"),
				Description: ae.AttrValue("description"),
				RoleA:       attrMult(ae, "rolea", MultM),
				RoleB:       attrMult(ae, "roleb", Mult1),
			})
		}
	}
	return f
}

func unmarshalMethods(parent *xmldom.Node) []*Method {
	ms := parent.FirstElement("methods")
	if ms == nil {
		return nil
	}
	var out []*Method
	for _, me := range ms.ElementsByName("method") {
		out = append(out, &Method{
			ID:          me.AttrValue("id"),
			Name:        me.AttrValue("name"),
			Signature:   me.AttrValue("signature"),
			Description: me.AttrValue("description"),
		})
	}
	return out
}

func unmarshalDimAtts(parent *xmldom.Node) []*DimAtt {
	as := parent.FirstElement("dimatts")
	if as == nil {
		return nil
	}
	var out []*DimAtt
	for _, ae := range as.ElementsByName("dimatt") {
		out = append(out, &DimAtt{
			ID:          ae.AttrValue("id"),
			Name:        ae.AttrValue("name"),
			Type:        ae.AttrValue("type"),
			IsOID:       attrBool(ae, "isoid", false),
			IsD:         attrBool(ae, "isd", false),
			Description: ae.AttrValue("description"),
		})
	}
	return out
}

func unmarshalAssocs(parent *xmldom.Node) []*Association {
	rs := parent.FirstElement("relationasocs")
	if rs == nil {
		return nil
	}
	var out []*Association
	for _, re := range rs.ElementsByName("relationasoc") {
		out = append(out, &Association{
			Child:        re.AttrValue("child"),
			Name:         re.AttrValue("name"),
			Description:  re.AttrValue("description"),
			RoleA:        attrMult(re, "rolea", Mult1),
			RoleB:        attrMult(re, "roleb", MultM),
			Completeness: attrBool(re, "completeness", false),
		})
	}
	return out
}

func unmarshalDim(e *xmldom.Node) *DimClass {
	d := &DimClass{
		ID:          e.AttrValue("id"),
		Name:        e.AttrValue("name"),
		Caption:     e.AttrValue("caption"),
		Description: e.AttrValue("description"),
		IsTime:      attrBool(e, "istime", false),
	}
	d.Atts = unmarshalDimAtts(e)
	if ls := e.FirstElement("asoclevels"); ls != nil {
		for _, le := range ls.ElementsByName("asoclevel") {
			l := &Level{
				ID:          le.AttrValue("id"),
				Name:        le.AttrValue("name"),
				Caption:     le.AttrValue("caption"),
				Description: le.AttrValue("description"),
			}
			l.Atts = unmarshalDimAtts(le)
			l.Associations = unmarshalAssocs(le)
			l.Methods = unmarshalMethods(le)
			d.Levels = append(d.Levels, l)
		}
	}
	d.Associations = unmarshalAssocs(e)
	if cs := e.FirstElement("catlevels"); cs != nil {
		for _, ce := range cs.ElementsByName("catlevel") {
			d.CatLevels = append(d.CatLevels, &CatLevel{
				ID:          ce.AttrValue("id"),
				Name:        ce.AttrValue("name"),
				Description: ce.AttrValue("description"),
				Atts:        unmarshalDimAtts(ce),
			})
		}
	}
	d.Methods = unmarshalMethods(e)
	return d
}

func unmarshalCube(e *xmldom.Node) *CubeClass {
	c := &CubeClass{
		ID:          e.AttrValue("id"),
		Name:        e.AttrValue("name"),
		Description: e.AttrValue("description"),
		Fact:        e.AttrValue("factclass"),
	}
	if ms := e.FirstElement("measures"); ms != nil {
		for _, me := range ms.ElementsByName("measure") {
			c.Measures = append(c.Measures, me.AttrValue("factatt"))
		}
	}
	if ss := e.FirstElement("slices"); ss != nil {
		for _, se := range ss.ElementsByName("slice") {
			c.Slices = append(c.Slices, &Slice{
				Att:      se.AttrValue("att"),
				Operator: Operator(se.AttrValue("operator")),
				Value:    se.AttrValue("value"),
			})
		}
	}
	if ds := e.FirstElement("dices"); ds != nil {
		for _, de := range ds.ElementsByName("dice") {
			c.Dices = append(c.Dices, &Dice{
				DimClass: de.AttrValue("dimclass"),
				Level:    de.AttrValue("level"),
			})
		}
	}
	return c
}
