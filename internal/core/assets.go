package core

import (
	_ "embed"
	"sync"

	"goldweb/internal/xmldom"
	"goldweb/internal/xsd"
	"goldweb/internal/xslt"
)

// Canonical embedded assets: the XML Schema of §3.1, the two XSLT
// presentations of §4 and the CSS they link.
var (
	//go:embed assets/goldmodel.xsd
	SchemaXSD string

	//go:embed assets/single.xsl
	SingleXSL string

	//go:embed assets/multi.xsl
	MultiXSL string

	//go:embed assets/style.css
	StyleCSS string

	// SchemaDTD is the DTD of the paper's previous proposal ([16]),
	// retained so the §3.1 DTD-vs-Schema comparison is executable.
	//go:embed assets/goldmodel.dtd
	SchemaDTD string
)

var (
	schemaOnce sync.Once
	schema     *xsd.Schema
	schemaErr  error
)

// Schema returns the compiled canonical goldmodel schema.
func Schema() (*xsd.Schema, error) {
	schemaOnce.Do(func() {
		schema, schemaErr = xsd.ParseSchemaString(SchemaXSD)
	})
	return schema, schemaErr
}

// MustSchema is Schema for contexts where the embedded schema is known
// good (it is covered by tests).
func MustSchema() *xsd.Schema {
	s, err := Schema()
	if err != nil {
		panic(err)
	}
	return s
}

// ValidateDocument validates a goldmodel document against the canonical
// schema, applying attribute defaults to the instance (what a validating
// parser contributes), and returns all violations.
func ValidateDocument(doc *xmldom.Node) []xsd.ValidationError {
	return MustSchema().Validate(doc, xsd.ValidateOptions{ApplyDefaults: true})
}

// ValidateModel marshals the model and validates the result against the
// canonical schema, i.e. the full CASE-tool round trip of §3.2.
func ValidateModel(m *Model) []xsd.ValidationError {
	return ValidateDocument(m.ToXML())
}

var (
	singleOnce sync.Once
	singleXSLT *xslt.Stylesheet
	singleErr  error

	multiOnce sync.Once
	multiXSLT *xslt.Stylesheet
	multiErr  error
)

// SinglePageStylesheet returns the compiled embedded XSLT 1.0
// single-page presentation. Compiled stylesheets are read-only and safe
// for concurrent Transform calls, so the same instance is shared
// process-wide (compiled once).
func SinglePageStylesheet() (*xslt.Stylesheet, error) {
	singleOnce.Do(func() {
		singleXSLT, singleErr = xslt.CompileStylesheetString(SingleXSL, xslt.CompileOptions{})
	})
	return singleXSLT, singleErr
}

// MultiPageStylesheet returns the compiled embedded XSLT 1.1 multi-page
// presentation (one page per class, via xsl:document), shared and
// compiled once like SinglePageStylesheet.
func MultiPageStylesheet() (*xslt.Stylesheet, error) {
	multiOnce.Do(func() {
		multiXSLT, multiErr = xslt.CompileStylesheetString(MultiXSL, xslt.CompileOptions{})
	})
	return multiXSLT, multiErr
}
