package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestScriptReplaysInOrder(t *testing.T) {
	in := New(1)
	in.Script("m", FailN(2), Fault{Kind: Torn}, Fault{Kind: Panic})
	want := []Kind{Fail, Fail, Torn, Panic, None, None}
	for i, w := range want {
		if got := in.Next("m"); got != w {
			t.Errorf("call %d: got %v, want %v", i, got, w)
		}
	}
	c := in.Counts()
	if c[Fail] != 2 || c[Torn] != 1 || c[Panic] != 1 || c.Total() != 4 {
		t.Errorf("counts = %v", c)
	}
}

func TestKeysAreIndependent(t *testing.T) {
	in := New(1)
	in.Script("a", FailN(1))
	if got := in.Next("b"); got != None {
		t.Errorf("key b: got %v, want None", got)
	}
	if got := in.Next("a"); got != Fail {
		t.Errorf("key a: got %v, want Fail", got)
	}
}

func TestApplyFail(t *testing.T) {
	in := New(1)
	in.Script("k", FailN(1))
	_, err := in.Apply(context.Background(), "k", []byte("payload"))
	if !Injected(err) {
		t.Fatalf("error %v is not classified as injected", err)
	}
	data, err := in.Apply(context.Background(), "k", []byte("payload"))
	if err != nil || string(data) != "payload" {
		t.Fatalf("exhausted script: data=%q err=%v", data, err)
	}
}

func TestApplyPanicCarriesClassifiableValue(t *testing.T) {
	in := New(1)
	in.Script("k", Fault{Kind: Panic})
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("no panic")
		}
		v, ok := rec.(*PanicValue)
		if !ok {
			t.Fatalf("panicked with %T, want *PanicValue", rec)
		}
		// A recover handler that wraps the value keeps classification.
		err := fmt.Errorf("publish panicked: %w", v)
		if !Injected(err) {
			t.Errorf("wrapped panic error %v not classified as injected", err)
		}
	}()
	in.Apply(context.Background(), "k", nil)
}

func TestApplyHangBlocksUntilCtx(t *testing.T) {
	in := New(1)
	in.Script("k", Fault{Kind: Hang})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := in.Apply(ctx, "k", nil)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("hang returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !Injected(err) || !errors.Is(err, context.Canceled) {
			t.Errorf("hang error %v, want injected+canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hang did not release on cancel")
	}
}

func TestApplyTornTruncates(t *testing.T) {
	in := New(1)
	in.Script("k", Fault{Kind: Torn})
	payload := []byte("<goldmodel name='x'>body</goldmodel>")
	data, err := in.Apply(context.Background(), "k", payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || len(data) >= len(payload) {
		t.Errorf("torn payload length %d of %d", len(data), len(payload))
	}
	if string(payload[:len(data)]) != string(data) {
		t.Error("torn payload is not a prefix")
	}
}

func TestChaosIsDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) []Kind {
		in := New(seed)
		in.Chaos("k", 0.5, Fail, Torn)
		out := make([]Kind, 64)
		for i := range out {
			out[i] = in.Next("k")
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(7)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical draws (suspicious)")
	}
}

func TestStopAndResume(t *testing.T) {
	in := New(1)
	in.Script("k", FailN(3))
	if in.Next("k") != Fail {
		t.Fatal("armed injector did not fire")
	}
	in.Stop()
	if got := in.Next("k"); got != None {
		t.Errorf("stopped injector fired %v", got)
	}
	if in.Pending("k") != 2 {
		t.Errorf("pending = %d, want 2 (stop must not consume)", in.Pending("k"))
	}
	in.Resume()
	if in.Next("k") != Fail {
		t.Error("resumed injector did not fire")
	}
}

func TestConcurrentNextIsRaceFree(t *testing.T) {
	in := New(1)
	in.Script("k", FailN(500))
	in.Chaos("j", 0.3)
	var wg sync.WaitGroup
	var fails int64
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < 100; i++ {
				if in.Next("k") == Fail {
					local++
				}
				in.Next("j")
			}
			mu.Lock()
			fails += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if fails != 500 {
		t.Errorf("scripted fails observed %d, want exactly 500", fails)
	}
	if got := in.Counts()[Fail]; got < 500 {
		t.Errorf("counted fails %d, want >= 500", got)
	}
}
