// Package faultinject provides deterministic, seed-able fault hooks for
// resilience testing. A web-fed warehouse refresh is an unreliable,
// continuously-running process (PAPERS.md: "Warehousing complex data
// from the Web"); the serving layer must survive loads and publishes
// that fail, hang, panic, or hand back torn bytes. This package makes
// those failure modes reproducible: an Injector holds per-key fault
// scripts — fail-N-times, panic, hang-until-ctx, torn-input — that the
// catalog's loader and publish hooks consult on every call, and keeps
// exact per-kind counts so a chaos test can assert that every observed
// failure was one it injected.
//
// Everything is deterministic: scripts replay in order, and the only
// randomness (Chaos mode) comes from a seeded PRNG owned by the
// Injector, so a failing soak run reproduces from its seed.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// None means "no fault": the hooked call proceeds untouched.
	None Kind = iota
	// Fail makes the hooked call return an error wrapping ErrInjected.
	Fail
	// Panic makes the hooked call panic with a *PanicValue (an error
	// wrapping ErrInjected, so recover-and-wrap layers stay classifiable).
	Panic
	// Hang blocks the hooked call until its context is canceled, then
	// returns the context error wrapped in ErrInjected.
	Hang
	// Torn truncates the call's payload mid-byte-stream — the classic
	// half-written file a crashed republisher leaves behind. The call
	// itself succeeds; the corruption surfaces downstream (parse).
	Torn
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Fail:
		return "fail"
	case Panic:
		return "panic"
	case Hang:
		return "hang"
	case Torn:
		return "torn"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ErrInjected marks every error this package manufactures. Classify
// with errors.Is (or Injected), never by message.
var ErrInjected = errors.New("faultinject: injected fault")

// Injected reports whether err originates from an injected fault.
func Injected(err error) bool { return errors.Is(err, ErrInjected) }

// PanicValue is what Panic faults panic with. It implements error and
// wraps ErrInjected so a recover handler that converts the panic into
// an error (fmt.Errorf("...: %w", v)) keeps the injection classifiable.
type PanicValue struct {
	Key string
}

func (p *PanicValue) Error() string  { return "faultinject: injected panic at " + p.Key }
func (p *PanicValue) Unwrap() error  { return ErrInjected }
func (p *PanicValue) String() string { return p.Error() }

// Fault is one scripted fault: Kind applied N consecutive times
// (N <= 0 means once).
type Fault struct {
	Kind Kind
	N    int
}

// FailN scripts n consecutive failing calls.
func FailN(n int) Fault { return Fault{Kind: Fail, N: n} }

// Counts is a per-kind tally of the faults an Injector has fired.
type Counts map[Kind]int64

// Total sums every injected fault.
func (c Counts) Total() int64 {
	var n int64
	for _, v := range c {
		n += v
	}
	return n
}

// chaosCfg is the random-mode configuration for one key.
type chaosCfg struct {
	p     float64
	kinds []Kind
}

// Injector holds per-key fault scripts and fires them deterministically.
// All methods are safe for concurrent use.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	scripts map[string][]Fault
	chaos   map[string]chaosCfg
	counts  Counts
	stopped bool
}

// New returns an Injector whose Chaos mode draws from a PRNG seeded
// with seed; scripted faults are fully deterministic regardless.
func New(seed int64) *Injector {
	return &Injector{
		rng:     rand.New(rand.NewSource(seed)),
		scripts: map[string][]Fault{},
		chaos:   map[string]chaosCfg{},
		counts:  Counts{},
	}
}

// Script appends faults to key's script. Each call to Next for the key
// consumes the script head; an exhausted script means None.
func (in *Injector) Script(key string, faults ...Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, f := range faults {
		if f.N <= 0 {
			f.N = 1
		}
		in.scripts[key] = append(in.scripts[key], f)
	}
}

// Chaos arms random faults for key: each Next draws one of kinds with
// probability p (after any script is exhausted). The draw comes from
// the Injector's seeded PRNG, so a given seed replays the same faults
// in the same call order.
func (in *Injector) Chaos(key string, p float64, kinds ...Kind) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(kinds) == 0 {
		kinds = []Kind{Fail, Panic, Hang, Torn}
	}
	in.chaos[key] = chaosCfg{p: p, kinds: kinds}
}

// Stop disarms the injector: every subsequent Next returns None.
// Scripts and chaos configs are kept (Counts stay readable); Resume
// re-arms them.
func (in *Injector) Stop() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stopped = true
}

// Resume re-arms a stopped injector.
func (in *Injector) Resume() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stopped = false
}

// Next consumes and returns the next fault kind for key (None when
// nothing is scheduled). The returned kind is already counted.
func (in *Injector) Next(key string) Kind {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.stopped {
		return None
	}
	if s := in.scripts[key]; len(s) > 0 {
		k := s[0].Kind
		s[0].N--
		if s[0].N <= 0 {
			s = s[1:]
		}
		in.scripts[key] = s
		if k != None {
			in.counts[k]++
		}
		return k
	}
	if cfg, ok := in.chaos[key]; ok && cfg.p > 0 && in.rng.Float64() < cfg.p {
		k := cfg.kinds[in.rng.Intn(len(cfg.kinds))]
		if k != None {
			in.counts[k]++
		}
		return k
	}
	return None
}

// Pending reports how many scripted faults remain for key.
func (in *Injector) Pending(key string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, f := range in.scripts[key] {
		n += f.N
	}
	return n
}

// Counts returns a copy of the per-kind injected-fault tally.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(Counts, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Apply consults the next fault for key and applies it to a call
// carrying payload data:
//
//	None  → (data, nil)
//	Fail  → (nil, error wrapping ErrInjected)
//	Panic → panics with *PanicValue
//	Hang  → blocks until ctx is done, then (nil, ctx.Err() wrapping ErrInjected)
//	Torn  → (data truncated mid-stream, nil)
//
// It is the one hook point loaders and publishers need: wrap the real
// call and pass its payload through Apply.
func (in *Injector) Apply(ctx context.Context, key string, data []byte) ([]byte, error) {
	switch in.Next(key) {
	case Fail:
		return nil, fmt.Errorf("%w: fail at %s", ErrInjected, key)
	case Panic:
		panic(&PanicValue{Key: key})
	case Hang:
		<-ctx.Done()
		return nil, fmt.Errorf("%w: hang released at %s: %w", ErrInjected, key, ctx.Err())
	case Torn:
		return Tear(data), nil
	}
	return data, nil
}

// Step is Apply without a payload — for hooking calls that produce
// structured results rather than bytes (e.g. a publish). Torn is
// meaningless without bytes and degrades to Fail.
func (in *Injector) Step(ctx context.Context, key string) error {
	switch in.Next(key) {
	case Fail, Torn:
		return fmt.Errorf("%w: fail at %s", ErrInjected, key)
	case Panic:
		panic(&PanicValue{Key: key})
	case Hang:
		<-ctx.Done()
		return fmt.Errorf("%w: hang released at %s: %w", ErrInjected, key, ctx.Err())
	}
	return nil
}

// Tear deterministically truncates data the way a crashed writer does:
// cut just past the midpoint so the prefix still looks plausible.
func Tear(data []byte) []byte {
	if len(data) < 2 {
		return nil
	}
	return data[: len(data)/2+1 : len(data)/2+1]
}
