package xmldom

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func nested(depth int) string {
	return strings.Repeat("<d>", depth) + "x" + strings.Repeat("</d>", depth)
}

func TestDefaultLimitsRejectTenKDeepNesting(t *testing.T) {
	_, err := ParseString(nested(10_000))
	if err == nil {
		t.Fatal("10k-deep document parsed under default limits")
	}
	if !strings.Contains(err.Error(), "nesting depth") {
		t.Errorf("error does not describe the depth limit: %v", err)
	}
}

func TestDefaultLimitsAllowReasonableNesting(t *testing.T) {
	// The pre-existing stress depth (2000) must stay parseable.
	if _, err := ParseString(nested(2000)); err != nil {
		t.Fatalf("2000-deep document rejected: %v", err)
	}
}

func TestExplicitDepthLimitIsExact(t *testing.T) {
	lim := Limits{MaxDepth: 16}
	if _, err := ParseStringWithLimits(nested(16), lim); err != nil {
		t.Errorf("depth 16 at limit 16 rejected: %v", err)
	}
	if _, err := ParseStringWithLimits(nested(17), lim); err == nil {
		t.Error("depth 17 at limit 16 accepted")
	}
}

func TestInputSizeLimit(t *testing.T) {
	doc := "<r>" + strings.Repeat("a", 200) + "</r>"
	_, err := ParseStringWithLimits(doc, Limits{MaxInput: 100})
	if err == nil {
		t.Fatal("oversized input accepted")
	}
	if !strings.Contains(err.Error(), "byte limit") {
		t.Errorf("error does not describe the size limit: %v", err)
	}
	if _, err := ParseStringWithLimits(doc, Limits{MaxInput: 1000}); err != nil {
		t.Errorf("in-budget input rejected: %v", err)
	}
}

func attrBomb(n int) string {
	var b strings.Builder
	b.WriteString("<e")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, ` a%d="v"`, i)
	}
	b.WriteString("/>")
	return b.String()
}

func TestAttributeBombRejected(t *testing.T) {
	_, err := ParseString(attrBomb(2000))
	if err == nil {
		t.Fatal("2000-attribute element accepted under default limits")
	}
	if !strings.Contains(err.Error(), "attributes") {
		t.Errorf("error does not describe the attribute limit: %v", err)
	}

	lim := Limits{MaxAttrs: 8}
	if _, err := ParseStringWithLimits(attrBomb(8), lim); err != nil {
		t.Errorf("8 attributes at limit 8 rejected: %v", err)
	}
	if _, err := ParseStringWithLimits(attrBomb(9), lim); err == nil {
		t.Error("9 attributes at limit 8 accepted")
	}
}

func TestZeroLimitsMeanUnlimited(t *testing.T) {
	if _, err := ParseStringWithLimits(nested(6000), Limits{}); err != nil {
		t.Errorf("unlimited parse of 6000-deep document failed: %v", err)
	}
}

// wideDoc builds a flat document with n sibling elements — enough of
// them to trip the periodic cancellation poll.
func wideDoc(n int) []byte {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<e i=\"%d\">x</e>", i)
	}
	b.WriteString("</r>")
	return []byte(b.String())
}

func TestParseContextCanceledAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ParseContext(ctx, wideDoc(5000), Limits{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled parse returned %v, want context.Canceled", err)
	}

	// Cancellation mid-parse (via the polled channel) also aborts.
	ch := make(chan struct{})
	close(ch)
	if _, err := ParseWithLimits(wideDoc(5000), Limits{Cancel: ch}); err == nil {
		t.Fatal("parse with closed Cancel channel completed")
	}
}

func TestParseContextCompletesWhenNotCanceled(t *testing.T) {
	doc, err := ParseContext(context.Background(), wideDoc(1000), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if doc.DocumentElement() == nil {
		t.Fatal("no document element")
	}
}
