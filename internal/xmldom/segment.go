package xmldom

import "strings"

// Segment is a pre-recorded, balanced fragment of result-construction
// events: the compile-time form of a static literal run in a stylesheet
// (literal text and literal elements whose attributes carry no
// expressions). The XSLT bytecode compiler records each such run once
// with RecordSegment; at transform time the whole run is appended to a
// ByteEmitter tape with one bulk copy (AppendSegment) instead of
// re-emitting every event, or replayed through the Emitter interface for
// tree-building sinks (Replay).
//
// A Segment is immutable after RecordSegment and safe to share between
// concurrent transformations.
type Segment struct {
	events []emitEvent
	attrs  []emitAttr
	// Top-level summary flags, precomputed so AppendSegment can update
	// the enclosing open element's bookkeeping without scanning:
	topAny    bool // the segment has at least one top-level event
	topStruct bool // … including an element, comment or PI
	topText   bool // … including non-whitespace text
}

// RecordSegment runs record against a scratch tape emitter and freezes
// the recorded events as a Segment. The recording must be balanced
// (every BeginElement closed); RecordSegment panics otherwise, since an
// unbalanced segment cannot be appended mid-tape.
func RecordSegment(record func(Emitter)) *Segment {
	b := &ByteEmitter{}
	record(b)
	if len(b.open) != 0 {
		panic("xmldom: RecordSegment: unbalanced recording")
	}
	s := &Segment{events: b.events, attrs: b.attrs}
	depth := 0
	for i := range s.events {
		ev := &s.events[i]
		switch ev.kind {
		case evBegin:
			if depth == 0 {
				s.topAny, s.topStruct = true, true
			}
			depth++
		case evEnd:
			depth--
		case evComment, evPI:
			if depth == 0 {
				s.topAny, s.topStruct = true, true
			}
		case evText:
			if depth == 0 {
				s.topAny = true
				if !s.topText && strings.TrimSpace(ev.s1) != "" {
					s.topText = true
				}
			}
		}
	}
	return s
}

// Events reports the number of recorded events, for introspection and
// disassembly.
func (s *Segment) Events() int { return len(s.events) }

// Summary renders a compact one-line description of the segment's
// top-level content for disassembly listings.
func (s *Segment) Summary() string {
	var b strings.Builder
	depth := 0
	for i := range s.events {
		ev := &s.events[i]
		switch ev.kind {
		case evBegin:
			if depth == 0 {
				b.WriteByte('<')
				if ev.s1 != "" {
					b.WriteString(ev.s1)
					b.WriteByte(':')
				}
				b.WriteString(ev.s3)
				b.WriteByte('>')
			}
			depth++
		case evEnd:
			depth--
		case evText:
			if depth == 0 {
				b.WriteString(compactText(ev.s1))
			}
		case evComment:
			if depth == 0 {
				b.WriteString("<!---->")
			}
		case evPI:
			if depth == 0 {
				b.WriteString("<?" + ev.s1 + "?>")
			}
		}
	}
	return b.String()
}

// compactText abbreviates a text run for display.
func compactText(s string) string {
	if strings.TrimSpace(s) == "" {
		return "␣"
	}
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 24 {
		s = s[:21] + "..."
	}
	return s
}

// AppendSegment bulk-appends a recorded segment to the tape: one event
// copy and one attribute-arena copy with the attribute spans rebased,
// plus a single bookkeeping update on the enclosing open element. The
// resulting tape is identical to replaying the segment event by event.
func (b *ByteEmitter) AppendSegment(s *Segment) {
	if p := b.top(); p != nil && s.topAny {
		p.hasContent = true
		if s.topStruct {
			p.childStruct = true
		}
		if s.topText {
			p.childText = true
		}
	}
	base := int32(len(b.attrs))
	b.attrs = append(b.attrs, s.attrs...)
	n := len(b.events)
	b.events = append(b.events, s.events...)
	if base != 0 {
		for i := n; i < len(b.events); i++ {
			if ev := &b.events[i]; ev.kind == evBegin {
				ev.a0 += base
				ev.a1 += base
			}
		}
	}
}

// Replay re-emits the segment through the Emitter interface, for sinks
// that are not ByteEmitters (result-tree builders, text capture). The
// call sequence matches the original recording exactly: BeginElement,
// its attributes, children, EndElement.
func (s *Segment) Replay(e Emitter) {
	for i := range s.events {
		ev := &s.events[i]
		switch ev.kind {
		case evBegin:
			e.BeginElement(ev.s1, ev.s2, ev.s3)
			for _, a := range s.attrs[ev.a0:ev.a1] {
				e.Attr(a.prefix, a.uri, a.name, a.value)
			}
		case evEnd:
			e.EndElement()
		case evText:
			e.Text(ev.s1, ev.flags&efRaw != 0)
		case evComment:
			e.Comment(ev.s1)
		case evPI:
			e.PI(ev.s1, ev.s2)
		}
	}
}
