package xmldom

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTreeConstruction(t *testing.T) {
	doc := NewDocument()
	root := doc.AddElement("goldmodel")
	root.SetAttr("id", "m1")
	facts := root.AddElement("factclasses")
	f := facts.AddElement("factclass")
	f.SetAttr("id", "f1")
	f.AddText("x")

	if f.Root() != doc {
		t.Error("Root() did not reach document")
	}
	if got := doc.XML(); got != `<goldmodel id="m1"><factclasses><factclass id="f1">x</factclass></factclasses></goldmodel>` {
		t.Errorf("xml = %s", got)
	}
}

func TestSetAttrOverwrites(t *testing.T) {
	e := NewElement("e")
	e.SetAttr("a", "1")
	e.SetAttr("a", "2")
	if len(e.Attr) != 1 || e.AttrValue("a") != "2" {
		t.Fatalf("attrs = %+v", e.Attr)
	}
}

func TestRemoveChildAndAttr(t *testing.T) {
	e := NewElement("e")
	c1 := e.AddElement("c1")
	c2 := e.AddElement("c2")
	e.RemoveChild(c1)
	if len(e.Children) != 1 || e.Children[0] != c2 {
		t.Fatalf("children = %+v", e.Children)
	}
	if c1.Parent != nil {
		t.Error("removed child still parented")
	}
	e.SetAttr("a", "1")
	e.RemoveAttr("a")
	if e.HasAttr("a") {
		t.Error("attribute not removed")
	}
}

func TestInsertBefore(t *testing.T) {
	e := NewElement("e")
	b := e.AddElement("b")
	a := NewElement("a")
	e.InsertBefore(a, b)
	if e.Children[0] != a || e.Children[1] != b {
		t.Fatalf("order = %v, %v", e.Children[0].Name, e.Children[1].Name)
	}
	c := NewElement("c")
	e.InsertBefore(c, nil) // append
	if e.Children[2] != c {
		t.Fatal("nil ref should append")
	}
}

func TestCloneIsDeepAndDetached(t *testing.T) {
	doc := MustParseString(`<a x="1"><b>t</b></a>`)
	orig := doc.DocumentElement()
	cl := orig.Clone()
	if cl.Parent != nil {
		t.Error("clone should be detached")
	}
	cl.SetAttr("x", "2")
	cl.FirstElement("b").Children[0].Data = "changed"
	if orig.AttrValue("x") != "1" || orig.StringValue() != "t" {
		t.Error("mutating clone affected original")
	}
	if cl.FirstElement("b").Parent != cl {
		t.Error("clone children not reparented")
	}
}

func TestStringValue(t *testing.T) {
	doc := MustParseString(`<a>one<b>two<!--not me--></b><?pi nor me?>three</a>`)
	if got := doc.StringValue(); got != "onetwothree" {
		t.Errorf("string-value = %q", got)
	}
	attr := &Node{Type: AttrNode, Name: "a", Data: "val"}
	if attr.StringValue() != "val" {
		t.Error("attribute string-value")
	}
}

func TestPath(t *testing.T) {
	doc := MustParseString(`<m><fs><f id="1"/><f id="2"/></fs></m>`)
	f2 := doc.DocumentElement().FirstElement("fs").Elements()[1]
	if got := f2.Path(); got != "/m/fs/f[2]" {
		t.Errorf("path = %q", got)
	}
	if got := f2.GetAttr("id").Path(); got != "/m/fs/f[2]/@id" {
		t.Errorf("attr path = %q", got)
	}
	if got := doc.Path(); got != "/" {
		t.Errorf("doc path = %q", got)
	}
}

func TestCompareOrder(t *testing.T) {
	doc := MustParseString(`<a p="1"><b/><c><d/></c></a>`)
	a := doc.DocumentElement()
	b := a.FirstElement("b")
	c := a.FirstElement("c")
	d := c.FirstElement("d")
	p := a.GetAttr("p")

	cases := []struct {
		x, y *Node
		want int
		name string
	}{
		{a, b, -1, "parent before child"},
		{b, c, -1, "sibling order"},
		{b, d, -1, "b before d"},
		{d, c, 1, "descendant after ancestor"},
		{p, b, -1, "attr before children"},
		{a, p, -1, "element before its attrs"},
		{d, d, 0, "identity"},
	}
	for _, tc := range cases {
		if got := CompareOrder(tc.x, tc.y); got != tc.want {
			t.Errorf("%s: got %d want %d", tc.name, got, tc.want)
		}
	}
}

func TestSortDocOrderDedupes(t *testing.T) {
	doc := MustParseString(`<a><b/><c/><d/></a>`)
	a := doc.DocumentElement()
	b, c, d := a.Children[0], a.Children[1], a.Children[2]
	sorted := SortDocOrder([]*Node{d, b, c, b, d, a})
	want := []*Node{a, b, c, d}
	if len(sorted) != len(want) {
		t.Fatalf("len = %d want %d", len(sorted), len(want))
	}
	for i := range want {
		if sorted[i] != want[i] {
			t.Errorf("pos %d: got %s", i, sorted[i].Name)
		}
	}
}

func TestDescendantElements(t *testing.T) {
	doc := MustParseString(`<a><x/><b><x/><y/></b></a>`)
	if got := len(doc.DescendantElements("x")); got != 2 {
		t.Errorf("x count = %d", got)
	}
	if got := len(doc.DescendantElements("")); got != 5 {
		t.Errorf("all count = %d", got)
	}
}

// TestRoundTripProperty: any tree serialized and reparsed has the same
// structure (names, attributes, merged text).
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		doc := randomTree(seed)
		out := SerializeToString(doc, WriteOptions{})
		doc2, err := ParseString(out)
		if err != nil {
			t.Logf("reparse failed for %q: %v", out, err)
			return false
		}
		return equalTrees(doc, doc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomTree builds a small deterministic pseudo-random document.
func randomTree(seed int64) *Node {
	state := uint64(seed)*2654435761 + 12345
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	names := []string{"alpha", "beta", "gamma", "delta"}
	texts := []string{"plain", "with & amp", "a<b", `quote"here`, "tab\there"}
	doc := NewDocument()
	var build func(parent *Node, depth int)
	build = func(parent *Node, depth int) {
		e := parent.AddElement(names[next(len(names))])
		for i := 0; i < next(3); i++ {
			e.SetAttr(names[next(len(names))]+"a", texts[next(len(texts))])
		}
		if depth < 3 {
			for i := 0; i < next(3); i++ {
				build(e, depth+1)
			}
		}
		if next(2) == 0 {
			e.AddText(texts[next(len(texts))])
		}
	}
	build(doc, 0)
	return doc
}

// equalTrees compares structure, ignoring text node boundaries by merging
// adjacent text.
func equalTrees(a, b *Node) bool {
	if a.Type != b.Type || a.Name != b.Name || a.URI != b.URI {
		return false
	}
	if a.Type == TextNode || a.Type == AttrNode || a.Type == CommentNode {
		if a.Data != b.Data {
			return false
		}
	}
	if len(a.Attr) != len(b.Attr) {
		return false
	}
	for i := range a.Attr {
		if !equalTrees(a.Attr[i], b.Attr[i]) {
			return false
		}
	}
	ac, bc := mergeText(a.Children), mergeText(b.Children)
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if tn, ok := ac[i].(string); ok {
			if tn2, ok2 := bc[i].(string); !ok2 || tn != tn2 {
				return false
			}
			continue
		}
		n1 := ac[i].(*Node)
		n2, ok := bc[i].(*Node)
		if !ok || !equalTrees(n1, n2) {
			return false
		}
	}
	return true
}

func mergeText(children []*Node) []interface{} {
	var out []interface{}
	var buf strings.Builder
	flush := func() {
		if buf.Len() > 0 {
			out = append(out, buf.String())
			buf.Reset()
		}
	}
	for _, c := range children {
		if c.Type == TextNode {
			buf.WriteString(c.Data)
		} else {
			flush()
			out = append(out, c)
		}
	}
	flush()
	return out
}
