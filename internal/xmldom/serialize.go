package xmldom

import (
	"fmt"
	"io"
	"strings"
)

// WriteOptions control serialization. The zero value produces compact XML
// with an XML declaration.
type WriteOptions struct {
	// Method is "xml" (default), "html" or "text", mirroring xsl:output.
	Method string
	// Indent, when non-empty, pretty-prints using this unit (e.g. "  ").
	Indent string
	// OmitDecl suppresses the <?xml ...?> declaration (xml method only).
	OmitDecl bool
	// DoctypePublic/DoctypeSystem emit a DOCTYPE before the root element.
	DoctypePublic string
	DoctypeSystem string
}

// htmlVoid lists HTML elements that are serialized without an end tag when
// using the html output method.
var htmlVoid = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// htmlRawText lists HTML elements whose text content is not escaped.
var htmlRawText = map[string]bool{"script": true, "style": true}

// HTMLVoid reports whether an element name (case-insensitive) is an HTML
// void element: under the html output method it is serialized without an
// end tag, so any children a transformation puts inside it produce
// invalid markup. Exported for the static result-shape analysis, which
// must lint against exactly the serializer's content model.
func HTMLVoid(name string) bool { return htmlVoid[strings.ToLower(name)] }

// HTMLRawText reports whether an element name (case-insensitive) is an
// HTML raw-text element (script, style): under the html output method
// its text content is emitted unescaped, so text containing "</" can
// terminate the element early. Exported for the static result-shape
// analysis.
func HTMLRawText(name string) bool { return htmlRawText[strings.ToLower(name)] }

// Serialize renders the node tree to w according to opts.
func Serialize(w io.Writer, n *Node, opts WriteOptions) error {
	s := &serializer{w: w, opts: opts}
	if opts.Method == "" {
		s.opts.Method = "xml"
	}
	s.run(n)
	return s.err
}

// SerializeToString renders the node tree to a string.
func SerializeToString(n *Node, opts WriteOptions) string {
	var b strings.Builder
	_ = Serialize(&b, n, opts)
	return b.String()
}

// XML returns the compact XML serialization of n without a declaration.
func (n *Node) XML() string {
	return SerializeToString(n, WriteOptions{OmitDecl: true})
}

// Pretty returns an indented XML rendering of n, the moral equivalent of a
// browser's collapsed source view of an XML document without a stylesheet
// (paper Fig. 4).
func Pretty(n *Node) string {
	return SerializeToString(n, WriteOptions{Indent: "  ", OmitDecl: false})
}

type serializer struct {
	w    io.Writer
	opts WriteOptions
	err  error
}

func (s *serializer) ws(str string) {
	if s.err == nil {
		_, s.err = io.WriteString(s.w, str)
	}
}

func (s *serializer) run(n *Node) {
	if s.opts.Method == "text" {
		s.ws(n.StringValue())
		return
	}
	if n.Type == DocumentNode {
		if s.opts.Method == "xml" && !s.opts.OmitDecl {
			s.ws("<?xml version=\"1.0\" encoding=\"UTF-8\"?>")
			if s.opts.Indent != "" {
				s.ws("\n")
			}
		}
		s.doctype(n)
		for _, c := range n.Children {
			s.node(c, 0, false)
			if s.opts.Indent != "" {
				s.ws("\n")
			}
		}
		return
	}
	s.doctype(n)
	s.node(n, 0, false)
}

func (s *serializer) doctype(n *Node) {
	root := n.DocumentElement()
	if root == nil {
		return
	}
	pub, sys := s.opts.DoctypePublic, s.opts.DoctypeSystem
	if pub == "" && sys == "" {
		return
	}
	s.ws("<!DOCTYPE " + root.FullName())
	if pub != "" {
		s.ws(" PUBLIC \"" + pub + "\"")
		if sys != "" {
			s.ws(" \"" + sys + "\"")
		}
	} else {
		s.ws(" SYSTEM \"" + sys + "\"")
	}
	s.ws(">")
	if s.opts.Indent != "" {
		s.ws("\n")
	}
}

// hasElementChildren reports whether n has at least one element child and
// no non-whitespace text children (i.e. it is safe to indent inside it).
func hasOnlyStructuredContent(n *Node) bool {
	hasElem := false
	for _, c := range n.Children {
		switch c.Type {
		case ElementNode, CommentNode, PINode:
			hasElem = true
		case TextNode:
			if strings.TrimSpace(c.Data) != "" {
				return false
			}
		}
	}
	return hasElem
}

func (s *serializer) indent(depth int) {
	if s.opts.Indent == "" {
		return
	}
	s.ws("\n")
	for i := 0; i < depth; i++ {
		s.ws(s.opts.Indent)
	}
}

func (s *serializer) node(n *Node, depth int, inRaw bool) {
	switch n.Type {
	case ElementNode:
		s.element(n, depth)
	case TextNode:
		if inRaw || n.Raw {
			s.ws(n.Data)
		} else {
			s.ws(EscapeText(n.Data))
		}
	case CommentNode:
		s.ws("<!--" + n.Data + "-->")
	case PINode:
		if n.Data == "" {
			s.ws("<?" + n.Name + "?>")
		} else {
			s.ws("<?" + n.Name + " " + n.Data + "?>")
		}
	case DocumentNode:
		for _, c := range n.Children {
			s.node(c, depth, inRaw)
		}
	case AttrNode:
		// Attribute nodes are serialized by their element.
	}
}

func (s *serializer) element(n *Node, depth int) {
	html := s.opts.Method == "html" && n.URI == ""
	name := n.FullName()
	s.ws("<" + name)
	for _, a := range n.Attr {
		s.ws(" " + a.FullName() + "=\"" + EscapeAttr(a.Data) + "\"")
	}
	if len(n.Children) == 0 {
		if html {
			if htmlVoid[strings.ToLower(n.Name)] {
				s.ws(">")
				return
			}
			s.ws("></" + name + ">")
			return
		}
		s.ws("/>")
		return
	}
	s.ws(">")
	raw := html && htmlRawText[strings.ToLower(n.Name)]
	structured := s.opts.Indent != "" && hasOnlyStructuredContent(n)
	for _, c := range n.Children {
		if structured && c.Type != TextNode {
			s.indent(depth + 1)
		}
		if structured && c.Type == TextNode {
			continue // whitespace-only: replaced by indentation
		}
		s.node(c, depth+1, raw)
	}
	if structured {
		s.indent(depth)
	}
	s.ws("</" + name + ">")
}

// EscapeText escapes character data for element content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "&<>\r") {
		return s
	}
	return string(appendEscText(make([]byte, 0, len(s)+16), s))
}

// appendEscText appends s to dst with element-content escaping. Escaped
// characters are all ASCII, so multi-byte runes pass through byte-wise.
func appendEscText(dst []byte, s string) []byte {
	start := 0
	for i := 0; i < len(s); i++ {
		var rep string
		switch s[i] {
		case '&':
			rep = "&amp;"
		case '<':
			rep = "&lt;"
		case '>':
			rep = "&gt;"
		case '\r':
			rep = "&#13;"
		default:
			continue
		}
		dst = append(dst, s[start:i]...)
		dst = append(dst, rep...)
		start = i + 1
	}
	return append(dst, s[start:]...)
}

// EscapeAttr escapes a string for use inside a double-quoted attribute.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, "&<>\"\t\n\r") {
		return s
	}
	return string(appendEscAttr(make([]byte, 0, len(s)+16), s))
}

// appendEscAttr appends s to dst with attribute-value escaping.
func appendEscAttr(dst []byte, s string) []byte {
	start := 0
	for i := 0; i < len(s); i++ {
		var rep string
		switch s[i] {
		case '&':
			rep = "&amp;"
		case '<':
			rep = "&lt;"
		case '>':
			rep = "&gt;"
		case '"':
			rep = "&quot;"
		case '\t':
			rep = "&#9;"
		case '\n':
			rep = "&#10;"
		case '\r':
			rep = "&#13;"
		default:
			continue
		}
		dst = append(dst, s[start:i]...)
		dst = append(dst, rep...)
		start = i + 1
	}
	return append(dst, s[start:]...)
}

// Fprint writes a compact XML rendering of n to w; mainly a debugging aid.
func Fprint(w io.Writer, n *Node) {
	fmt.Fprint(w, SerializeToString(n, WriteOptions{OmitDecl: true}))
}
