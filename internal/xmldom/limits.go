package xmldom

import (
	"context"
	"fmt"
)

// Limits bound the resources a single Parse call may consume, so a
// malicious or malformed document cannot exhaust the process (deeply
// nested elements overflow recursion, attribute bombs trigger the
// quadratic duplicate check, oversized inputs blow memory). A field
// that is zero or negative means "no limit for this axis".
type Limits struct {
	// MaxDepth caps element nesting depth.
	MaxDepth int
	// MaxInput caps the input size in bytes.
	MaxInput int
	// MaxAttrs caps the number of attributes on a single element.
	MaxAttrs int
	// Cancel, when non-nil, aborts the parse shortly after the channel
	// is closed (polled every few hundred elements). ParseContext wires
	// a context's Done channel here so a catalog reload that is being
	// torn down does not keep parsing a huge document.
	Cancel <-chan struct{}
}

// DefaultLimits are the limits Parse and ParseString apply. They are
// far above anything a real multidimensional model produces (the
// deepest documents of the workload sweeps nest a few dozen levels)
// while still rejecting pathological inputs such as a 10k-deep nest.
var DefaultLimits = Limits{
	MaxDepth: 4096,
	MaxInput: 64 << 20, // 64 MiB
	MaxAttrs: 1024,
}

// ParseWithLimits is Parse with explicit resource limits.
func ParseWithLimits(src []byte, lim Limits) (*Node, error) {
	if lim.MaxInput > 0 && len(src) > lim.MaxInput {
		return nil, &ParseError{Line: 1, Col: 1,
			Msg: fmt.Sprintf("input is %d bytes, exceeds the %d byte limit", len(src), lim.MaxInput)}
	}
	p := &parser{src: src, line: 1, col: 1, limits: lim}
	return p.parseDocument()
}

// ParseStringWithLimits is ParseWithLimits for string input.
func ParseStringWithLimits(src string, lim Limits) (*Node, error) {
	return ParseWithLimits([]byte(src), lim)
}

// ParseContext is ParseWithLimits under a context: when ctx is
// canceled the parse aborts (checked periodically) and the context's
// error is returned instead of a positioned ParseError.
func ParseContext(ctx context.Context, src []byte, lim Limits) (*Node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lim.Cancel = ctx.Done()
	doc, err := ParseWithLimits(src, lim)
	if err != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return doc, err
}
