package xmldom

import (
	"strings"
	"testing"
)

func TestParseMinimalDocument(t *testing.T) {
	doc, err := ParseString(`<?xml version="1.0"?><root/>`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	root := doc.DocumentElement()
	if root == nil || root.Name != "root" {
		t.Fatalf("bad root: %+v", root)
	}
	if root.Parent != doc {
		t.Fatal("root not parented to document")
	}
}

func TestParseNestedElementsAndText(t *testing.T) {
	doc := MustParseString(`<a><b>hello</b><c>world</c></a>`)
	a := doc.DocumentElement()
	if len(a.Elements()) != 2 {
		t.Fatalf("want 2 children, got %d", len(a.Elements()))
	}
	if got := a.FirstElement("b").StringValue(); got != "hello" {
		t.Errorf("b = %q", got)
	}
	if got := a.StringValue(); got != "helloworld" {
		t.Errorf("string-value = %q", got)
	}
}

func TestParseAttributes(t *testing.T) {
	doc := MustParseString(`<e id="x1" name="Sales &amp; Tickets" flag='yes'/>`)
	e := doc.DocumentElement()
	if got := e.AttrValue("id"); got != "x1" {
		t.Errorf("id = %q", got)
	}
	if got := e.AttrValue("name"); got != "Sales & Tickets" {
		t.Errorf("name = %q", got)
	}
	if got := e.AttrValue("flag"); got != "yes" {
		t.Errorf("flag = %q", got)
	}
	if e.HasAttr("missing") {
		t.Error("missing attribute reported present")
	}
}

func TestParseDuplicateAttributeRejected(t *testing.T) {
	if _, err := ParseString(`<e a="1" a="2"/>`); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
}

func TestParseEntities(t *testing.T) {
	doc := MustParseString(`<t>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</t>`)
	if got := doc.StringValue(); got != `<>&'"AB` {
		t.Errorf("entities = %q", got)
	}
}

func TestParseUndefinedEntityRejected(t *testing.T) {
	if _, err := ParseString(`<t>&nbsp;</t>`); err == nil {
		t.Fatal("undefined entity accepted")
	}
}

func TestParseCDATA(t *testing.T) {
	doc := MustParseString(`<t><![CDATA[<not> & markup]]></t>`)
	if got := doc.StringValue(); got != "<not> & markup" {
		t.Errorf("cdata = %q", got)
	}
}

func TestParseCommentAndPI(t *testing.T) {
	doc := MustParseString(`<!-- top --><r><?php echo ?><!--in--></r>`)
	r := doc.DocumentElement()
	var pi, comment *Node
	for _, c := range r.Children {
		switch c.Type {
		case PINode:
			pi = c
		case CommentNode:
			comment = c
		}
	}
	if pi == nil || pi.Name != "php" || strings.TrimSpace(pi.Data) != "echo" {
		t.Errorf("pi = %+v", pi)
	}
	if comment == nil || comment.Data != "in" {
		t.Errorf("comment = %+v", comment)
	}
	if doc.Children[0].Type != CommentNode || doc.Children[0].Data != " top " {
		t.Errorf("document comment missing: %+v", doc.Children[0])
	}
}

func TestParseNamespaces(t *testing.T) {
	doc := MustParseString(`<x:root xmlns:x="urn:one" xmlns="urn:def">` +
		`<child x:attr="v"/></x:root>`)
	root := doc.DocumentElement()
	if root.URI != "urn:one" || root.Prefix != "x" || root.Name != "root" {
		t.Fatalf("root ns: %+v", root)
	}
	child := root.Elements()[0]
	if child.URI != "urn:def" {
		t.Errorf("default ns not applied: %q", child.URI)
	}
	a := child.GetAttrNS("urn:one", "attr")
	if a == nil || a.Data != "v" {
		t.Errorf("namespaced attr lookup failed: %+v", a)
	}
	// Unprefixed attributes have no namespace.
	doc2 := MustParseString(`<r xmlns="urn:d" a="1"/>`)
	if got := doc2.DocumentElement().GetAttr("a"); got == nil {
		t.Error("unprefixed attribute should have empty namespace")
	}
}

func TestParseUndeclaredPrefixRejected(t *testing.T) {
	if _, err := ParseString(`<x:r/>`); err == nil {
		t.Fatal("undeclared element prefix accepted")
	}
	if _, err := ParseString(`<r y:a="1"/>`); err == nil {
		t.Fatal("undeclared attribute prefix accepted")
	}
}

func TestParseNamespaceScoping(t *testing.T) {
	doc := MustParseString(`<r xmlns:p="urn:a"><p:in xmlns:p="urn:b"/><p:out/></r>`)
	r := doc.DocumentElement()
	if got := r.Elements()[0].URI; got != "urn:b" {
		t.Errorf("inner redeclaration: %q", got)
	}
	if got := r.Elements()[1].URI; got != "urn:a" {
		t.Errorf("outer binding restored: %q", got)
	}
}

func TestParseXMLPrefixPredefined(t *testing.T) {
	doc := MustParseString(`<r xml:lang="en"/>`)
	a := doc.DocumentElement().GetAttrNS(XMLNamespace, "lang")
	if a == nil || a.Data != "en" {
		t.Fatalf("xml:lang: %+v", a)
	}
}

func TestParseMismatchedTagsRejected(t *testing.T) {
	for _, src := range []string{`<a></b>`, `<a><b></a></b>`, `<a>`, `</a>`, `<a/><b/>`} {
		if _, err := ParseString(src); err == nil {
			t.Errorf("accepted malformed %q", src)
		}
	}
}

func TestParseDoctypeSkipped(t *testing.T) {
	doc, err := ParseString(`<!DOCTYPE r [ <!ELEMENT r (#PCDATA)> ]><r>ok</r>`)
	if err != nil {
		t.Fatalf("doctype: %v", err)
	}
	if doc.StringValue() != "ok" {
		t.Errorf("content = %q", doc.StringValue())
	}
}

func TestParseAttributeValueNormalization(t *testing.T) {
	doc := MustParseString("<r a=\"one\ttwo\nthree\"/>")
	if got := doc.DocumentElement().AttrValue("a"); got != "one two three" {
		t.Errorf("normalized = %q", got)
	}
}

func TestParsePositions(t *testing.T) {
	doc := MustParseString("<a>\n  <b/>\n</a>")
	b := doc.DocumentElement().FirstElement("b")
	if b.Line != 2 || b.Col != 3 {
		t.Errorf("position = %d:%d, want 2:3", b.Line, b.Col)
	}
}

func TestParseContentAfterRootRejected(t *testing.T) {
	if _, err := ParseString(`<a/>text`); err == nil {
		t.Fatal("trailing text accepted")
	}
}

func TestParseLtInAttributeRejected(t *testing.T) {
	if _, err := ParseString(`<a b="<"/>`); err == nil {
		t.Fatal("'<' in attribute accepted")
	}
}

func TestParseBOM(t *testing.T) {
	doc, err := Parse([]byte("\xef\xbb\xbf<r/>"))
	if err != nil {
		t.Fatalf("BOM: %v", err)
	}
	if doc.DocumentElement().Name != "r" {
		t.Fatal("bad root after BOM")
	}
}

func TestParseWhitespacePreserved(t *testing.T) {
	doc := MustParseString("<a>  <b/>  </a>")
	a := doc.DocumentElement()
	if len(a.Children) != 3 {
		t.Fatalf("want 3 children (ws, b, ws), got %d", len(a.Children))
	}
	if a.Children[0].Type != TextNode || a.Children[0].Data != "  " {
		t.Errorf("leading whitespace not preserved: %+v", a.Children[0])
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := ParseString("<a>\n<b></c>\n</a>")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %T (%v)", err, err)
	}
	if pe.Line != 2 {
		t.Errorf("error line = %d, want 2", pe.Line)
	}
}
