package xmldom

import (
	"strings"
	"testing"
)

// orderFixture builds and freezes a small document:
//
//	<r a="1" b="2"><c1><g/></c1><c2/></r>
//
// returning the interesting nodes by name.
func orderFixture(t *testing.T) map[string]*Node {
	t.Helper()
	doc := NewDocument()
	r := doc.AppendChild(NewElement("r"))
	a := r.SetAttr("a", "1")
	b := r.SetAttr("b", "2")
	c1 := r.AppendChild(NewElement("c1"))
	g := c1.AppendChild(NewElement("g"))
	c2 := r.AppendChild(NewElement("c2"))
	Freeze(doc)
	return map[string]*Node{
		"doc": doc, "r": r, "a": a, "b": b, "c1": c1, "g": g, "c2": c2,
	}
}

// TestDocOrderAttrsBetweenElementAndChildren pins the XPath 1.0 rule that
// stamps must encode: an element precedes its attributes, and its
// attributes precede all of its children.
func TestDocOrderAttrsBetweenElementAndChildren(t *testing.T) {
	n := orderFixture(t)
	// The full expected document order of the fixture.
	want := []*Node{n["doc"], n["r"], n["a"], n["b"], n["c1"], n["g"], n["c2"]}
	for i := range want {
		for j := range want {
			got := CompareOrder(want[i], want[j])
			exp := 0
			if i < j {
				exp = -1
			} else if i > j {
				exp = 1
			}
			if got != exp {
				t.Errorf("CompareOrder(#%d, #%d) = %d, want %d", i, j, got, exp)
			}
		}
	}
	// And the stamps agree with the comparison.
	for i := 1; i < len(want); i++ {
		if want[i-1].DocOrder() >= want[i].DocOrder() {
			t.Errorf("stamp #%d (%d) not below stamp #%d (%d)",
				i-1, want[i-1].DocOrder(), i, want[i].DocOrder())
		}
	}
}

// TestDocOrderAncestorBeforeDescendant: every ancestor precedes every
// node in its subtree, and the subtree-end stamp brackets exactly the
// descendants.
func TestDocOrderAncestorBeforeDescendant(t *testing.T) {
	n := orderFixture(t)
	if CompareOrder(n["r"], n["g"]) != -1 {
		t.Error("ancestor r must precede descendant g")
	}
	if CompareOrder(n["g"], n["c2"]) != -1 {
		t.Error("g (inside c1) must precede following sibling c2 of c1")
	}
	// Subtree window: c1's (ord, end] must contain g and nothing after c2.
	c1, g, c2 := n["c1"], n["g"], n["c2"]
	if !(g.DocOrder() > c1.DocOrder() && g.DocOrder() <= c1.end) {
		t.Errorf("g stamp %d outside c1 window (%d, %d]", g.DocOrder(), c1.DocOrder(), c1.end)
	}
	if c2.DocOrder() <= c1.end {
		t.Errorf("c2 stamp %d inside c1 window ending %d", c2.DocOrder(), c1.end)
	}
}

// TestDocOrderCrossDocument: nodes of different documents compare by
// document identity — a total, deterministic order (creation order), not
// allocator addresses — and SortDocOrder groups documents accordingly.
func TestDocOrderCrossDocument(t *testing.T) {
	d1 := NewDocument()
	e1 := d1.AppendChild(NewElement("x"))
	d2 := NewDocument()
	e2 := d2.AppendChild(NewElement("y"))
	Freeze(d1)
	Freeze(d2)
	if CompareOrder(e1, e2) != -1 || CompareOrder(e2, e1) != 1 {
		t.Fatal("earlier-created document must order before later one")
	}
	sorted := SortDocOrder([]*Node{e2, d2, e1, d1, e2})
	wantNames := []string{"", "x", "", "y"} // d1, e1, d2, e2 — duplicate e2 removed
	if len(sorted) != 4 {
		t.Fatalf("got %d nodes after sort+dedup, want 4", len(sorted))
	}
	for i, s := range sorted {
		if s.Name != wantNames[i] {
			t.Errorf("sorted[%d] = %q, want %q", i, s.Name, wantNames[i])
		}
	}
	if sorted[0] != d1 || sorted[2] != d2 {
		t.Error("documents not grouped in creation order")
	}
}

// TestDocOrderCrossDocumentUnfrozen: the deterministic cross-tree order
// holds for unfrozen trees too (the path-key fallback).
func TestDocOrderCrossDocumentUnfrozen(t *testing.T) {
	d1 := NewDocument()
	e1 := d1.AppendChild(NewElement("x"))
	d2 := NewDocument()
	e2 := d2.AppendChild(NewElement("y"))
	if CompareOrder(e1, e2) != -1 || CompareOrder(e2, e1) != 1 {
		t.Fatal("unfrozen cross-document order must follow creation order")
	}
	sorted := SortDocOrder([]*Node{e2, e1})
	if sorted[0] != e1 || sorted[1] != e2 {
		t.Error("unfrozen SortDocOrder must group by document identity")
	}
}

// TestEditableLeavesStampsIntact: Editable is copy-on-write — the copy is
// unfrozen and mutable, and the original's stamps and indexes are
// untouched by mutations of the copy.
func TestEditableLeavesStampsIntact(t *testing.T) {
	n := orderFixture(t)
	doc := n["doc"]
	before := make(map[*Node]uint64)
	for _, node := range n {
		before[node] = node.DocOrder()
	}
	copyDoc := doc.Editable()
	if copyDoc.Frozen() {
		t.Fatal("Editable copy must not be frozen")
	}
	if copyDoc.DocOrder() != 0 {
		t.Errorf("Editable copy carries stale stamp %d", copyDoc.DocOrder())
	}
	// Mutate the copy heavily.
	root := copyDoc.Children[0]
	root.SetAttr("extra", "yes")
	root.AppendChild(NewElement("new"))
	root.RemoveChild(root.Children[0])
	// Original stamps, index and frozen state are unchanged.
	if !doc.Frozen() {
		t.Fatal("original lost frozen state")
	}
	for _, node := range n {
		if node.DocOrder() != before[node] {
			t.Errorf("stamp of %s changed: %d -> %d", node.Name, before[node], node.DocOrder())
		}
	}
	if got := doc.Index().ElementsByName("c1"); len(got) != 1 || got[0] != n["c1"] {
		t.Error("original name index changed after mutating the Editable copy")
	}
	// Re-freezing the copy gives it fresh, self-consistent stamps.
	Freeze(copyDoc)
	if copyDoc.Index().ID() == doc.Index().ID() {
		t.Error("Editable copy must get its own document identity")
	}
}

// TestFrozenMutatorsPanic: every exported mutator fails loudly on a
// frozen tree, pointing at Editable.
func TestFrozenMutatorsPanic(t *testing.T) {
	n := orderFixture(t)
	r := n["r"]
	cases := map[string]func(){
		"AppendChild":       func() { r.AppendChild(NewElement("z")) },
		"InsertBefore":      func() { r.InsertBefore(NewElement("z"), nil) },
		"RemoveChild":       func() { r.RemoveChild(n["c1"]) },
		"SetAttr":           func() { r.SetAttr("q", "v") },
		"RemoveAttr":        func() { r.RemoveAttr("a") },
		"AppendFrozenChild": func() { NewElement("z").AppendChild(n["c2"]) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				msg, _ := recover().(string)
				if msg == "" {
					t.Errorf("%s on frozen tree did not panic", name)
				} else if !strings.Contains(msg, "Editable") {
					t.Errorf("%s panic %q does not mention Editable", name, msg)
				}
			}()
			fn()
		}()
	}
}

// TestFreezeRequiresRoot: freezing mid-tree is a programming error.
func TestFreezeRequiresRoot(t *testing.T) {
	n := orderFixture(t)
	defer func() {
		if recover() == nil {
			t.Error("Freeze of a non-root node did not panic")
		}
	}()
	// n["c1"] is frozen already; build a fresh tree to get past the
	// idempotence fast path.
	d := NewDocument()
	e := d.AppendChild(NewElement("e"))
	_ = n
	Freeze(e)
}

// TestFreezeIdempotent: refreezing returns the same index and keeps the
// stamps stable.
func TestFreezeIdempotent(t *testing.T) {
	n := orderFixture(t)
	doc := n["doc"]
	ix := doc.Index()
	ordBefore := n["g"].DocOrder()
	if Freeze(doc) != ix {
		t.Error("refreeze returned a different index")
	}
	if n["g"].DocOrder() != ordBefore {
		t.Error("refreeze changed stamps")
	}
}

// TestIndexLookups: the byID and byName indexes answer the XPath id() and
// descendant-name questions that the query layer leans on.
func TestIndexLookups(t *testing.T) {
	doc := NewDocument()
	r := doc.AppendChild(NewElement("r"))
	k1 := r.AppendChild(NewElement("k"))
	k1.SetAttr("id", "one")
	sub := r.AppendChild(NewElement("sub"))
	k2 := sub.AppendChild(NewElement("k"))
	k2.SetAttr("id", "two")
	ix := Freeze(doc)
	if ix.ByID("one") != k1 || ix.ByID("two") != k2 {
		t.Error("ByID lookup wrong")
	}
	if ix.ByID("absent") != nil {
		t.Error("ByID of unknown id must be nil")
	}
	all := ix.ElementsByName("k")
	if len(all) != 2 || all[0] != k1 || all[1] != k2 {
		t.Errorf("ElementsByName(k) = %v", all)
	}
	// Subtree-scoped descendant lookup under sub sees only k2.
	got, ok := sub.IndexedDescendants("k", false)
	if !ok || len(got) != 1 || got[0] != k2 {
		t.Errorf("IndexedDescendants under sub = %v (ok=%v)", got, ok)
	}
	// Under the root both, in document order.
	got, ok = r.IndexedDescendants("k", false)
	if !ok || len(got) != 2 || got[0] != k1 || got[1] != k2 {
		t.Errorf("IndexedDescendants under r = %v (ok=%v)", got, ok)
	}
}
