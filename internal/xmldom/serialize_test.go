package xmldom

import (
	"strings"
	"testing"
)

func TestSerializeEscaping(t *testing.T) {
	e := NewElement("e")
	e.SetAttr("a", `<&">`)
	e.AddText("a < b & c")
	got := e.XML()
	want := `<e a="&lt;&amp;&quot;&gt;">a &lt; b &amp; c</e>`
	if got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestSerializeSelfClose(t *testing.T) {
	e := NewElement("empty")
	if got := e.XML(); got != "<empty/>" {
		t.Errorf("got %s", got)
	}
}

func TestSerializeDeclaration(t *testing.T) {
	doc := NewDocument()
	doc.AddElement("r")
	got := SerializeToString(doc, WriteOptions{})
	if !strings.HasPrefix(got, `<?xml version="1.0" encoding="UTF-8"?>`) {
		t.Errorf("missing declaration: %s", got)
	}
	got = SerializeToString(doc, WriteOptions{OmitDecl: true})
	if strings.Contains(got, "<?xml") {
		t.Errorf("declaration not omitted: %s", got)
	}
}

func TestSerializeHTMLVoidElements(t *testing.T) {
	doc := MustParseString(`<html><body><br></br><img src="x.png"></img><p>t</p></body></html>`)
	got := SerializeToString(doc, WriteOptions{Method: "html", OmitDecl: true})
	if strings.Contains(got, "</br>") || strings.Contains(got, "<br/>") {
		t.Errorf("br not void: %s", got)
	}
	if !strings.Contains(got, `<img src="x.png">`) || strings.Contains(got, "</img>") {
		t.Errorf("img not void: %s", got)
	}
	if !strings.Contains(got, "<p>t</p>") {
		t.Errorf("p lost: %s", got)
	}
}

func TestSerializeHTMLEmptyNonVoidGetsEndTag(t *testing.T) {
	doc := MustParseString(`<div></div>`)
	got := SerializeToString(doc, WriteOptions{Method: "html", OmitDecl: true})
	if got != "<div></div>" {
		t.Errorf("got %s", got)
	}
}

func TestSerializeHTMLScriptNotEscaped(t *testing.T) {
	doc := NewDocument()
	html := doc.AddElement("html")
	script := html.AddElement("script")
	script.AddText("if (a < b && c > d) {}")
	got := SerializeToString(doc, WriteOptions{Method: "html", OmitDecl: true})
	if !strings.Contains(got, "a < b && c > d") {
		t.Errorf("script escaped: %s", got)
	}
	// The same content in xml mode is escaped.
	got = SerializeToString(doc, WriteOptions{OmitDecl: true})
	if !strings.Contains(got, "a &lt; b &amp;&amp; c &gt; d") {
		t.Errorf("xml mode not escaped: %s", got)
	}
}

func TestSerializeTextMethod(t *testing.T) {
	doc := MustParseString(`<a>one <b>two</b></a>`)
	got := SerializeToString(doc, WriteOptions{Method: "text"})
	if got != "one two" {
		t.Errorf("text method = %q", got)
	}
}

func TestSerializeDoctype(t *testing.T) {
	doc := MustParseString(`<html/>`)
	got := SerializeToString(doc, WriteOptions{Method: "html",
		DoctypePublic: "-//W3C//DTD XHTML 1.0 Strict//EN",
		DoctypeSystem: "http://www.w3.org/TR/xhtml1/DTD/xhtml1-strict.dtd"})
	if !strings.HasPrefix(got, `<!DOCTYPE html PUBLIC "-//W3C//DTD XHTML 1.0 Strict//EN" "http://www.w3.org/TR/xhtml1/DTD/xhtml1-strict.dtd">`) {
		t.Errorf("doctype: %s", got)
	}
}

func TestPrettyIndents(t *testing.T) {
	doc := MustParseString(`<goldmodel><factclasses><factclass id="f"/></factclasses></goldmodel>`)
	got := Pretty(doc)
	want := "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<goldmodel>\n  <factclasses>\n    <factclass id=\"f\"/>\n  </factclasses>\n</goldmodel>\n"
	if got != want {
		t.Errorf("pretty:\n%s\nwant:\n%s", got, want)
	}
}

func TestPrettyPreservesMixedContent(t *testing.T) {
	doc := MustParseString(`<p>one <b>two</b> three</p>`)
	got := Pretty(doc)
	if !strings.Contains(got, "one <b>two</b> three") {
		t.Errorf("mixed content reflowed: %s", got)
	}
}

func TestSerializeNamespacedRoundTrip(t *testing.T) {
	src := `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema"><xsd:element name="e"/></xsd:schema>`
	doc := MustParseString(src)
	got := doc.DocumentElement().XML()
	doc2, err := ParseString(got)
	if err != nil {
		t.Fatalf("reparse: %v (%s)", err, got)
	}
	if doc2.DocumentElement().URI != "http://www.w3.org/2001/XMLSchema" {
		t.Errorf("namespace lost: %s", got)
	}
}

func TestRawTextNode(t *testing.T) {
	e := NewElement("e")
	txt := e.AddText("<raw/>")
	txt.Raw = true
	if got := e.XML(); got != "<e><raw/></e>" {
		t.Errorf("raw output = %s", got)
	}
}

func TestSerializePI(t *testing.T) {
	doc := NewDocument()
	doc.AppendChild(&Node{Type: PINode, Name: "xml-stylesheet", Data: `href="s.xsl"`})
	doc.AddElement("r")
	got := SerializeToString(doc, WriteOptions{OmitDecl: true})
	if got != `<?xml-stylesheet href="s.xsl"?><r/>` {
		t.Errorf("pi = %s", got)
	}
}
