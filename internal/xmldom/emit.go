package xmldom

import (
	"strings"
	"sync"
)

// Emitter is the output sink for XSLT result construction. Instructions
// produce a stream of element/attribute/text events; the sink either builds
// a result DOM (TreeEmitter) or records a flat event tape that serializes
// straight to bytes (ByteEmitter), skipping the intermediate tree.
//
// Event semantics mirror the result-tree DOM exactly:
//   - Attr targets the innermost open element and overwrites an existing
//     attribute with the same (local name, namespace URI) in place. It
//     returns false when no element is open (the "xsl:attribute outside an
//     element" condition); attributes may still arrive after child content.
//   - Text never merges adjacent text events; raw disables output escaping.
//   - CopyTree deep-copies an element/text/comment/PI subtree.
type Emitter interface {
	BeginElement(prefix, uri, name string)
	Attr(prefix, uri, name, value string) bool
	EndElement()
	Text(data string, raw bool)
	Comment(data string)
	PI(name, data string)
	CopyTree(n *Node)
	// OpenElement reports whether an element is currently open (i.e. Attr
	// would succeed).
	OpenElement() bool
}

// TreeEmitter builds a result DOM under a root node (usually a document).
// It is the sink used when callers need an actual result tree.
type TreeEmitter struct {
	stack []*Node
}

// NewTreeEmitter returns an emitter appending children to root.
func NewTreeEmitter(root *Node) *TreeEmitter {
	t := &TreeEmitter{}
	t.stack = append(t.stack, root)
	return t
}

func (t *TreeEmitter) cur() *Node { return t.stack[len(t.stack)-1] }

// Current exposes the innermost open node (the root when no element is open).
func (t *TreeEmitter) Current() *Node { return t.cur() }

func (t *TreeEmitter) BeginElement(prefix, uri, name string) {
	elem := &Node{Type: ElementNode, Name: name, Prefix: prefix, URI: uri}
	t.cur().AppendChild(elem)
	t.stack = append(t.stack, elem)
}

func (t *TreeEmitter) Attr(prefix, uri, name, value string) bool {
	c := t.cur()
	if c.Type != ElementNode {
		return false
	}
	c.SetAttrNS(prefix, uri, name, value)
	return true
}

func (t *TreeEmitter) EndElement() {
	if len(t.stack) > 1 {
		t.stack = t.stack[:len(t.stack)-1]
	}
}

func (t *TreeEmitter) Text(data string, raw bool) {
	n := t.cur().AddText(data)
	n.Raw = raw
}

func (t *TreeEmitter) Comment(data string) {
	t.cur().AppendChild(&Node{Type: CommentNode, Data: data})
}

func (t *TreeEmitter) PI(name, data string) {
	t.cur().AppendChild(&Node{Type: PINode, Name: name, Data: data})
}

func (t *TreeEmitter) CopyTree(n *Node) {
	t.cur().AppendChild(n.Clone())
}

func (t *TreeEmitter) OpenElement() bool { return t.cur().Type == ElementNode }

// --- ByteEmitter: event tape with direct-to-bytes replay ---

type emitKind uint8

const (
	evBegin emitKind = iota
	evEnd
	evText
	evComment
	evPI
)

// evBegin flags, decided when the element closes.
const (
	efHasContent uint8 = 1 << iota // element has at least one child event
	efStructured                   // element/comment/PI children, no non-ws text
	efRaw                          // text event: escaping disabled
)

type emitEvent struct {
	kind  emitKind
	flags uint8
	// evBegin: s1=prefix s2=uri s3=name; evText/evComment: s1=data;
	// evPI: s1=name s2=data.
	s1, s2, s3 string
	// evBegin: attribute span [a0,a1) in the attrs arena.
	a0, a1 int32
}

type emitAttr struct {
	prefix, uri, name, value string
}

type openElem struct {
	event        int32 // index of the evBegin event
	aStart, aEnd int32 // attribute span in the arena
	childStruct  bool  // has element/comment/PI child
	childText    bool  // has non-whitespace text child
	hasContent   bool  // has any child event
}

// ByteEmitter records result-construction events on a flat tape and
// serializes them directly to bytes. The indent decision for an element
// (whether its content is "structured") needs full-children lookahead, so
// the tape is replayed after the transform completes; what it saves is the
// entire intermediate result DOM.
//
// ByteEmitter is not safe for concurrent use. Obtain instances from
// NewByteEmitter and return them with Release.
type ByteEmitter struct {
	events []emitEvent
	attrs  []emitAttr
	open   []openElem
	buf    []byte // serialization scratch, reused across Serialize calls
}

var byteEmitterPool = sync.Pool{New: func() any { return new(ByteEmitter) }}

// NewByteEmitter returns an empty emitter from the pool.
func NewByteEmitter() *ByteEmitter {
	return byteEmitterPool.Get().(*ByteEmitter)
}

// Release resets the emitter and returns it to the pool. The emitter must
// not be used afterwards; byte slices returned by Serialize remain valid.
func (b *ByteEmitter) Release() {
	clear(b.events) // drop string references so pooled tapes don't pin memory
	clear(b.attrs)
	b.events = b.events[:0]
	b.attrs = b.attrs[:0]
	b.open = b.open[:0]
	b.buf = b.buf[:0]
	byteEmitterPool.Put(b)
}

func (b *ByteEmitter) top() *openElem {
	if len(b.open) == 0 {
		return nil
	}
	return &b.open[len(b.open)-1]
}

func (b *ByteEmitter) noteChild(structural bool) {
	if p := b.top(); p != nil {
		p.hasContent = true
		if structural {
			p.childStruct = true
		}
	}
}

func (b *ByteEmitter) BeginElement(prefix, uri, name string) {
	b.noteChild(true)
	b.events = append(b.events, emitEvent{kind: evBegin, s1: prefix, s2: uri, s3: name})
	n := int32(len(b.attrs))
	b.open = append(b.open, openElem{event: int32(len(b.events) - 1), aStart: n, aEnd: n})
}

func (b *ByteEmitter) Attr(prefix, uri, name, value string) bool {
	p := b.top()
	if p == nil {
		return false
	}
	for i := p.aStart; i < p.aEnd; i++ {
		a := &b.attrs[i]
		if a.name == name && a.uri == uri {
			a.prefix = prefix
			a.value = value
			return true
		}
	}
	if int(p.aEnd) != len(b.attrs) {
		// A nested element claimed the arena tail; relocate this span so it
		// stays contiguous (attributes set after child content — rare).
		start := int32(len(b.attrs))
		b.attrs = append(b.attrs, b.attrs[p.aStart:p.aEnd]...)
		p.aStart = start
		p.aEnd = int32(len(b.attrs))
	}
	b.attrs = append(b.attrs, emitAttr{prefix: prefix, uri: uri, name: name, value: value})
	p.aEnd++
	return true
}

func (b *ByteEmitter) EndElement() {
	n := len(b.open)
	if n == 0 {
		return
	}
	p := b.open[n-1]
	b.open = b.open[:n-1]
	ev := &b.events[p.event]
	ev.a0, ev.a1 = p.aStart, p.aEnd
	if p.hasContent {
		ev.flags |= efHasContent
	}
	if p.childStruct && !p.childText {
		ev.flags |= efStructured
	}
	b.events = append(b.events, emitEvent{kind: evEnd})
}

func (b *ByteEmitter) Text(data string, raw bool) {
	if p := b.top(); p != nil {
		p.hasContent = true
		if !p.childText && strings.TrimSpace(data) != "" {
			p.childText = true
		}
	}
	var fl uint8
	if raw {
		fl = efRaw
	}
	b.events = append(b.events, emitEvent{kind: evText, flags: fl, s1: data})
}

func (b *ByteEmitter) Comment(data string) {
	b.noteChild(true)
	b.events = append(b.events, emitEvent{kind: evComment, s1: data})
}

func (b *ByteEmitter) PI(name, data string) {
	b.noteChild(true)
	b.events = append(b.events, emitEvent{kind: evPI, s1: name, s2: data})
}

func (b *ByteEmitter) CopyTree(n *Node) {
	switch n.Type {
	case ElementNode:
		b.BeginElement(n.Prefix, n.URI, n.Name)
		for _, a := range n.Attr {
			b.Attr(a.Prefix, a.URI, a.Name, a.Data)
		}
		for _, c := range n.Children {
			b.CopyTree(c)
		}
		b.EndElement()
	case TextNode:
		b.Text(n.Data, n.Raw)
	case CommentNode:
		b.Comment(n.Data)
	case PINode:
		b.PI(n.Name, n.Data)
	case DocumentNode:
		for _, c := range n.Children {
			b.CopyTree(c)
		}
	}
}

func (b *ByteEmitter) OpenElement() bool { return len(b.open) > 0 }

// RootElement returns the name and namespace URI of the first top-level
// element on the tape, for output-method auto-detection.
func (b *ByteEmitter) RootElement() (name, uri string, ok bool) {
	for i := range b.events {
		if b.events[i].kind == evBegin {
			return b.events[i].s3, b.events[i].s2, true
		}
	}
	return "", "", false
}

// Serialize replays the tape according to opts and returns the rendered
// bytes. The returned slice is an exact-size copy owned by the caller; the
// internal scratch buffer is retained for reuse. The output is byte-
// identical to serializing the equivalent result DOM with Serialize.
func (b *ByteEmitter) Serialize(opts WriteOptions) []byte {
	if opts.Method == "" {
		opts.Method = "xml"
	}
	out := b.buf[:0]
	if opts.Method == "text" {
		for i := range b.events {
			if b.events[i].kind == evText {
				out = append(out, b.events[i].s1...)
			}
		}
	} else {
		out = b.replayDoc(out, &opts)
	}
	b.buf = out
	res := make([]byte, len(out))
	copy(res, out)
	return res
}

func (b *ByteEmitter) replayDoc(out []byte, opts *WriteOptions) []byte {
	if opts.Method == "xml" && !opts.OmitDecl {
		out = append(out, "<?xml version=\"1.0\" encoding=\"UTF-8\"?>"...)
		if opts.Indent != "" {
			out = append(out, '\n')
		}
	}
	out = b.replayDoctype(out, opts)
	for i := 0; i < len(b.events); {
		i, out = b.replayNode(i, 0, false, out, opts)
		if opts.Indent != "" {
			out = append(out, '\n')
		}
	}
	return out
}

func (b *ByteEmitter) replayDoctype(out []byte, opts *WriteOptions) []byte {
	pub, sys := opts.DoctypePublic, opts.DoctypeSystem
	if pub == "" && sys == "" {
		return out
	}
	root := -1
	for i := range b.events {
		if b.events[i].kind == evBegin {
			root = i
			break
		}
	}
	if root < 0 {
		return out
	}
	out = append(out, "<!DOCTYPE "...)
	out = appendFullName(out, b.events[root].s1, b.events[root].s3)
	if pub != "" {
		out = append(out, " PUBLIC \""...)
		out = append(out, pub...)
		out = append(out, '"')
		if sys != "" {
			out = append(out, " \""...)
			out = append(out, sys...)
			out = append(out, '"')
		}
	} else {
		out = append(out, " SYSTEM \""...)
		out = append(out, sys...)
		out = append(out, '"')
	}
	out = append(out, '>')
	if opts.Indent != "" {
		out = append(out, '\n')
	}
	return out
}

func appendFullName(out []byte, prefix, name string) []byte {
	if prefix != "" {
		out = append(out, prefix...)
		out = append(out, ':')
	}
	return append(out, name...)
}

func appendIndent(out []byte, depth int, unit string) []byte {
	out = append(out, '\n')
	for i := 0; i < depth; i++ {
		out = append(out, unit...)
	}
	return out
}

// replayNode renders the node event at index i and returns the index of the
// first event past it.
func (b *ByteEmitter) replayNode(i, depth int, inRaw bool, out []byte, opts *WriteOptions) (int, []byte) {
	ev := &b.events[i]
	switch ev.kind {
	case evBegin:
		return b.replayElement(i, depth, out, opts)
	case evText:
		if inRaw || ev.flags&efRaw != 0 {
			out = append(out, ev.s1...)
		} else {
			out = appendEscText(out, ev.s1)
		}
	case evComment:
		out = append(out, "<!--"...)
		out = append(out, ev.s1...)
		out = append(out, "-->"...)
	case evPI:
		out = append(out, "<?"...)
		out = append(out, ev.s1...)
		if ev.s2 != "" {
			out = append(out, ' ')
			out = append(out, ev.s2...)
		}
		out = append(out, "?>"...)
	case evEnd:
		// Unbalanced tape; skip defensively.
	}
	return i + 1, out
}

func (b *ByteEmitter) replayElement(i, depth int, out []byte, opts *WriteOptions) (int, []byte) {
	ev := &b.events[i]
	html := opts.Method == "html" && ev.s2 == ""
	out = append(out, '<')
	out = appendFullName(out, ev.s1, ev.s3)
	for _, a := range b.attrs[ev.a0:ev.a1] {
		out = append(out, ' ')
		out = appendFullName(out, a.prefix, a.name)
		out = append(out, '=', '"')
		out = appendEscAttr(out, a.value)
		out = append(out, '"')
	}
	if ev.flags&efHasContent == 0 {
		if html {
			if htmlVoid[strings.ToLower(ev.s3)] {
				out = append(out, '>')
				return i + 2, out // skip the evEnd
			}
			out = append(out, '>', '<', '/')
			out = appendFullName(out, ev.s1, ev.s3)
			out = append(out, '>')
			return i + 2, out
		}
		out = append(out, '/', '>')
		return i + 2, out
	}
	out = append(out, '>')
	raw := html && htmlRawText[strings.ToLower(ev.s3)]
	structured := opts.Indent != "" && ev.flags&efStructured != 0
	j := i + 1
	for {
		if b.events[j].kind == evEnd {
			j++
			break
		}
		if structured {
			if b.events[j].kind == evText {
				j++ // whitespace-only: replaced by indentation
				continue
			}
			out = appendIndent(out, depth+1, opts.Indent)
		}
		j, out = b.replayNode(j, depth+1, raw, out, opts)
	}
	if structured {
		out = appendIndent(out, depth, opts.Indent)
	}
	out = append(out, '<', '/')
	out = appendFullName(out, ev.s1, ev.s3)
	out = append(out, '>')
	return j, out
}
