// Package xmldom implements a lightweight XML document object model with a
// namespace-aware parser and XML/HTML/text serializers.
//
// It is the tree substrate that the xpath, xslt and xsd packages operate
// over, playing the role that a browser DOM or Xerces' DOM played in the
// original system. Only the Go standard library is used.
package xmldom

import (
	"fmt"
	"sort"
	"strings"
)

// NodeType identifies the kind of a Node.
type NodeType uint8

// The node kinds of the XPath data model that this DOM represents.
const (
	DocumentNode NodeType = iota + 1
	ElementNode
	TextNode
	CommentNode
	PINode
	AttrNode
)

func (t NodeType) String() string {
	switch t {
	case DocumentNode:
		return "document"
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case PINode:
		return "processing-instruction"
	case AttrNode:
		return "attribute"
	}
	return fmt.Sprintf("NodeType(%d)", uint8(t))
}

// Node is a node in an XML document tree. The same struct represents every
// node kind; which fields are meaningful depends on Type:
//
//   - ElementNode: Name (local), Prefix, URI, Attr, Children
//   - AttrNode: Name (local), Prefix, URI, Data (value)
//   - TextNode, CommentNode: Data
//   - PINode: Name (target), Data
//   - DocumentNode: Children
type Node struct {
	Type   NodeType
	Name   string // local name (element/attribute) or PI target
	Prefix string // namespace prefix as written in the source
	URI    string // resolved namespace URI ("" = no namespace)
	Data   string // character data or attribute value

	Parent   *Node
	Children []*Node
	Attr     []*Node // attribute nodes; Parent points at the element

	// Line and Col locate the node in its source document (1-based);
	// zero for programmatically constructed nodes.
	Line, Col int

	// Raw marks a text node whose data must be emitted without escaping
	// (produced by xsl:value-of disable-output-escaping, script/style).
	Raw bool

	// Index state, populated by Freeze (see index.go). ord/end are the
	// node's document-order stamp and its subtree's last stamp, sym the
	// interned name, idx the owning document's identity + indexes.
	ord, end uint64
	sym      Sym
	idx      *DocIndex
}

// NewDocument returns an empty document node. Documents carry a
// process-unique identity from birth so cross-tree document-order
// comparisons are deterministic.
func NewDocument() *Node {
	d := &Node{Type: DocumentNode}
	d.idx = newDocIdent(d)
	return d
}

// NewElement returns a detached element with the given local name and no
// namespace.
func NewElement(name string) *Node { return &Node{Type: ElementNode, Name: name} }

// NewText returns a detached text node.
func NewText(data string) *Node { return &Node{Type: TextNode, Data: data} }

// FullName returns the qualified name as written in the source
// (prefix:local, or just the local name when there is no prefix).
func (n *Node) FullName() string {
	if n.Prefix != "" {
		return n.Prefix + ":" + n.Name
	}
	return n.Name
}

// AppendChild adds c as the last child of n and reparents it.
// Panics when either tree is frozen (see Freeze/Editable).
func (n *Node) AppendChild(c *Node) *Node {
	n.assertMutable()
	c.assertMutable()
	c.Parent = n
	n.Children = append(n.Children, c)
	return c
}

// InsertBefore inserts c immediately before the existing child ref.
// If ref is nil or not a child of n, c is appended.
// Panics when either tree is frozen (see Freeze/Editable).
func (n *Node) InsertBefore(c, ref *Node) {
	n.assertMutable()
	c.assertMutable()
	idx := -1
	for i, ch := range n.Children {
		if ch == ref {
			idx = i
			break
		}
	}
	if idx < 0 {
		n.AppendChild(c)
		return
	}
	c.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[idx+1:], n.Children[idx:])
	n.Children[idx] = c
}

// RemoveChild detaches c from n. It is a no-op if c is not a child of n.
// Panics when the tree is frozen (see Freeze/Editable).
func (n *Node) RemoveChild(c *Node) {
	n.assertMutable()
	for i, ch := range n.Children {
		if ch == c {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			c.Parent = nil
			return
		}
	}
}

// AddElement creates an element child with the given local name, appends it
// and returns it.
func (n *Node) AddElement(name string) *Node {
	return n.AppendChild(NewElement(name))
}

// AddText creates and appends a text child.
func (n *Node) AddText(data string) *Node {
	return n.AppendChild(NewText(data))
}

// SetAttr sets the value of the attribute with the given local name and no
// namespace, creating it if necessary, and returns the attribute node.
func (n *Node) SetAttr(name, value string) *Node {
	return n.SetAttrNS("", "", name, value)
}

// SetAttrNS sets a namespaced attribute on n.
// Panics when the tree is frozen (see Freeze/Editable).
func (n *Node) SetAttrNS(prefix, uri, name, value string) *Node {
	n.assertMutable()
	for _, a := range n.Attr {
		if a.Name == name && a.URI == uri {
			a.Data = value
			a.Prefix = prefix
			return a
		}
	}
	a := &Node{Type: AttrNode, Name: name, Prefix: prefix, URI: uri, Data: value, Parent: n}
	n.Attr = append(n.Attr, a)
	return a
}

// GetAttr returns the attribute node with the given local name and empty
// namespace URI, or nil.
func (n *Node) GetAttr(name string) *Node { return n.GetAttrNS("", name) }

// GetAttrNS returns the attribute node with the given namespace URI and
// local name, or nil.
func (n *Node) GetAttrNS(uri, name string) *Node {
	for _, a := range n.Attr {
		if a.Name == name && a.URI == uri {
			return a
		}
	}
	return nil
}

// AttrValue returns the value of the named no-namespace attribute, or ""
// when absent.
func (n *Node) AttrValue(name string) string {
	if a := n.GetAttr(name); a != nil {
		return a.Data
	}
	return ""
}

// HasAttr reports whether the named no-namespace attribute is present.
func (n *Node) HasAttr(name string) bool { return n.GetAttr(name) != nil }

// RemoveAttr deletes the named no-namespace attribute if present.
// Panics when the tree is frozen (see Freeze/Editable).
func (n *Node) RemoveAttr(name string) {
	n.assertMutable()
	for i, a := range n.Attr {
		if a.Name == name && a.URI == "" {
			n.Attr = append(n.Attr[:i], n.Attr[i+1:]...)
			a.Parent = nil
			return
		}
	}
}

// Root returns the topmost ancestor of n (the document node for attached
// nodes). For attribute nodes the owning element's root is returned.
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// DocumentElement returns the first element child of a document node, the
// node itself when called on an element, and nil otherwise.
func (n *Node) DocumentElement() *Node {
	if n.Type == ElementNode {
		return n
	}
	if n.Type != DocumentNode {
		return nil
	}
	for _, c := range n.Children {
		if c.Type == ElementNode {
			return c
		}
	}
	return nil
}

// Elements returns the element children of n.
func (n *Node) Elements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Type == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// ElementsByName returns the element children with the given local name.
func (n *Node) ElementsByName(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Type == ElementNode && c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// FirstElement returns the first element child with the given local name,
// or nil.
func (n *Node) FirstElement(name string) *Node {
	for _, c := range n.Children {
		if c.Type == ElementNode && c.Name == name {
			return c
		}
	}
	return nil
}

// Descendants appends to out every descendant of n in document order
// (excluding n itself and attribute nodes) and returns the slice.
func (n *Node) Descendants() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		for _, c := range m.Children {
			out = append(out, c)
			walk(c)
		}
	}
	walk(n)
	return out
}

// DescendantElements returns all descendant elements with the given local
// name, in document order. An empty name matches every element.
func (n *Node) DescendantElements(name string) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		for _, c := range m.Children {
			if c.Type == ElementNode && (name == "" || c.Name == name) {
				out = append(out, c)
			}
			walk(c)
		}
	}
	walk(n)
	return out
}

// StringValue returns the XPath string-value of the node: the concatenation
// of all descendant text for documents and elements, and the node's own data
// otherwise.
func (n *Node) StringValue() string {
	switch n.Type {
	case DocumentNode, ElementNode:
		var b strings.Builder
		var walk func(*Node)
		walk = func(m *Node) {
			for _, c := range m.Children {
				if c.Type == TextNode {
					b.WriteString(c.Data)
				} else if c.Type == ElementNode {
					walk(c)
				}
			}
		}
		walk(n)
		return b.String()
	default:
		return n.Data
	}
}

// Clone returns a deep copy of n. The copy is detached (Parent is nil).
func (n *Node) Clone() *Node {
	c := &Node{Type: n.Type, Name: n.Name, Prefix: n.Prefix, URI: n.URI,
		Data: n.Data, Line: n.Line, Col: n.Col, Raw: n.Raw}
	for _, a := range n.Attr {
		ac := a.Clone()
		ac.Parent = c
		c.Attr = append(c.Attr, ac)
	}
	for _, ch := range n.Children {
		cc := ch.Clone()
		cc.Parent = c
		c.Children = append(c.Children, cc)
	}
	return c
}

// Path returns a human-readable slash path from the root to n, such as
// /goldmodel/factclasses/factclass[2]/@id, useful in error messages.
func (n *Node) Path() string {
	if n == nil {
		return ""
	}
	var parts []string
	for cur := n; cur != nil && cur.Type != DocumentNode; cur = cur.Parent {
		switch cur.Type {
		case AttrNode:
			parts = append(parts, "@"+cur.FullName())
		case ElementNode:
			step := cur.FullName()
			if p := cur.Parent; p != nil {
				idx, total := 0, 0
				for _, sib := range p.Children {
					if sib.Type == ElementNode && sib.Name == cur.Name && sib.URI == cur.URI {
						total++
						if sib == cur {
							idx = total
						}
					}
				}
				if total > 1 {
					step = fmt.Sprintf("%s[%d]", step, idx)
				}
			}
			parts = append(parts, step)
		case TextNode:
			parts = append(parts, "text()")
		case CommentNode:
			parts = append(parts, "comment()")
		case PINode:
			parts = append(parts, "processing-instruction()")
		}
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	if b.Len() == 0 {
		return "/"
	}
	return b.String()
}

// pathStep is one step of a document-order key: either an attribute slot or
// a child slot at the given index.
type pathStep struct {
	attr bool
	idx  int
}

// orderKey computes the document-order path from the root to n.
func orderKey(n *Node) []pathStep {
	var rev []pathStep
	cur := n
	for cur.Parent != nil {
		p := cur.Parent
		if cur.Type == AttrNode {
			for i, a := range p.Attr {
				if a == cur {
					rev = append(rev, pathStep{attr: true, idx: i})
					break
				}
			}
		} else {
			for i, c := range p.Children {
				if c == cur {
					rev = append(rev, pathStep{attr: false, idx: i})
					break
				}
			}
		}
		cur = p
	}
	// reverse
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// CompareOrder reports the relative document order of a and b:
// -1 if a precedes b, +1 if a follows b, 0 if they are the same node.
// Both nodes must belong to the same tree; nodes from different trees
// compare by an arbitrary but consistent rule (tree identity, assigned
// at document creation). On frozen trees the comparison is a single
// stamp comparison; otherwise it walks root-to-node paths.
func CompareOrder(a, b *Node) int {
	if a == b {
		return 0
	}
	if a.idx != nil && a.idx == b.idx && a.idx.frozen {
		if a.ord < b.ord {
			return -1
		}
		return 1
	}
	ra, rb := a.Root(), b.Root()
	if ra != rb {
		if treeIdent(ra) < treeIdent(rb) {
			return -1
		}
		return 1
	}
	ka, kb := orderKey(a), orderKey(b)
	for i := 0; i < len(ka) && i < len(kb); i++ {
		sa, sb := ka[i], kb[i]
		if sa == sb {
			continue
		}
		// At the same parent: the element's attributes precede its children.
		if sa.attr != sb.attr {
			if sa.attr {
				return -1
			}
			return 1
		}
		if sa.idx < sb.idx {
			return -1
		}
		return 1
	}
	// One is an ancestor of the other; the ancestor comes first.
	if len(ka) < len(kb) {
		return -1
	}
	return 1
}

// SortDocOrder sorts nodes in place into document order and removes
// duplicates, returning the (possibly shortened) slice. When every node
// belongs to a frozen tree the sort compares precomputed stamps; the
// path-key fallback only runs for unfrozen trees.
func SortDocOrder(nodes []*Node) []*Node {
	if len(nodes) < 2 {
		return nodes
	}
	allFrozen := true
	for _, n := range nodes {
		if n.idx == nil || !n.idx.frozen {
			allFrozen = false
			break
		}
	}
	if allFrozen {
		sort.Slice(nodes, func(i, j int) bool {
			a, b := nodes[i], nodes[j]
			if a.idx != b.idx {
				return a.idx.id < b.idx.id
			}
			return a.ord < b.ord
		})
		out := nodes[:0]
		var prev *Node
		for _, n := range nodes {
			if n != prev {
				out = append(out, n)
				prev = n
			}
		}
		return out
	}
	type keyed struct {
		n    *Node
		root uint64
		k    []pathStep
	}
	ks := make([]keyed, len(nodes))
	for i, n := range nodes {
		ks[i] = keyed{n, treeIdent(n.Root()), orderKey(n)}
	}
	sort.SliceStable(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.n == b.n {
			return false
		}
		if a.root != b.root {
			return a.root < b.root
		}
		for x := 0; x < len(a.k) && x < len(b.k); x++ {
			sa, sb := a.k[x], b.k[x]
			if sa == sb {
				continue
			}
			if sa.attr != sb.attr {
				return sa.attr
			}
			return sa.idx < sb.idx
		}
		return len(a.k) < len(b.k)
	})
	out := nodes[:0]
	var prev *Node
	for _, kv := range ks {
		if kv.n != prev {
			out = append(out, kv.n)
			prev = kv.n
		}
	}
	return out
}
