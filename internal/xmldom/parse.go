package xmldom

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// XMLNamespace is the reserved namespace bound to the xml: prefix.
const XMLNamespace = "http://www.w3.org/XML/1998/namespace"

// XMLNSNamespace is the reserved namespace of xmlns declarations.
const XMLNSNamespace = "http://www.w3.org/2000/xmlns/"

// ParseError describes a well-formedness error with its source position.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xml: %d:%d: %s", e.Line, e.Col, e.Msg)
}

type parser struct {
	src       []byte
	pos       int
	line, col int
	ns        []map[string]string // namespace binding frames
	limits    Limits
	depth     int // current element nesting depth
	elems     int // elements parsed, drives the periodic cancel check
}

// canceled polls the Limits.Cancel channel every 256 elements, so a
// parse of a huge document can be abandoned mid-flight (ParseContext
// wires a context's Done channel here).
func (p *parser) canceled() bool {
	if p.limits.Cancel == nil {
		return false
	}
	p.elems++
	if p.elems&0xff != 0 {
		return false
	}
	select {
	case <-p.limits.Cancel:
		return true
	default:
		return false
	}
}

// Parse parses a complete XML document and returns its document node.
// The parser is namespace-aware: prefixes are resolved against in-scope
// xmlns declarations and retained on the nodes for faithful serialization.
// Whitespace-only text nodes are preserved (XSLT decides about stripping).
// Resource consumption is bounded by DefaultLimits; use ParseWithLimits
// to tighten or lift the bounds.
func Parse(src []byte) (*Node, error) {
	return ParseWithLimits(src, DefaultLimits)
}

func (p *parser) parseDocument() (*Node, error) {
	p.ns = append(p.ns, map[string]string{"xml": XMLNamespace})
	doc := NewDocument()
	if err := p.parseProlog(doc); err != nil {
		return nil, err
	}
	elem, err := p.parseElement()
	if err != nil {
		return nil, err
	}
	doc.AppendChild(elem)
	if err := p.parseMisc(doc); err != nil {
		return nil, err
	}
	if p.pos < len(p.src) {
		return nil, p.errf("content after document element")
	}
	return doc, nil
}

// ParseString is Parse for string input.
func ParseString(src string) (*Node, error) { return Parse([]byte(src)) }

// MustParseString parses src and panics on error; intended for tests and
// embedded, known-good documents.
func MustParseString(src string) *Node {
	doc, err := ParseString(src)
	if err != nil {
		panic(err)
	}
	return doc
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) peekAt(off int) byte {
	if p.pos+off < len(p.src) {
		return p.src[p.pos+off]
	}
	return 0
}

func (p *parser) advance(n int) {
	for i := 0; i < n && p.pos < len(p.src); i++ {
		if p.src[p.pos] == '\n' {
			p.line++
			p.col = 1
		} else {
			p.col++
		}
		p.pos++
	}
}

func (p *parser) hasPrefix(s string) bool {
	return p.pos+len(s) <= len(p.src) && string(p.src[p.pos:p.pos+len(s)]) == s
}

func (p *parser) expect(s string) error {
	if !p.hasPrefix(s) {
		return p.errf("expected %q", s)
	}
	p.advance(len(s))
	return nil
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\r' || b == '\n' }

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && isSpace(p.src[p.pos]) {
		p.advance(1)
	}
}

func isNameStart(r rune) bool {
	return r == '_' || r == ':' || (r >= 'A' && r <= 'Z') || (r >= 'a' && r <= 'z') || r >= 0x80
}

func isNameChar(r rune) bool {
	return isNameStart(r) || r == '-' || r == '.' || (r >= '0' && r <= '9')
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	r, size := utf8.DecodeRune(p.src[p.pos:])
	if size == 0 || !isNameStart(r) {
		return "", p.errf("expected name")
	}
	p.advance(size)
	for p.pos < len(p.src) {
		r, size = utf8.DecodeRune(p.src[p.pos:])
		if !isNameChar(r) {
			break
		}
		p.advance(size)
	}
	return string(p.src[start:p.pos]), nil
}

// splitQName splits a possibly-prefixed name into (prefix, local).
func splitQName(q string) (string, string) {
	if i := strings.IndexByte(q, ':'); i >= 0 {
		return q[:i], q[i+1:]
	}
	return "", q
}

func (p *parser) lookupNS(prefix string) (string, bool) {
	for i := len(p.ns) - 1; i >= 0; i-- {
		if uri, ok := p.ns[i][prefix]; ok {
			return uri, ok
		}
	}
	return "", false
}

func (p *parser) parseProlog(doc *Node) error {
	if p.hasPrefix("\xef\xbb\xbf") { // UTF-8 BOM
		p.advance(3)
	}
	if p.hasPrefix("<?xml") && isSpace(p.peekAt(5)) {
		if err := p.skipPast("?>"); err != nil {
			return err
		}
	}
	return p.parseMiscAndDoctype(doc)
}

func (p *parser) skipPast(end string) error {
	for p.pos < len(p.src) {
		if p.hasPrefix(end) {
			p.advance(len(end))
			return nil
		}
		p.advance(1)
	}
	return p.errf("unterminated construct, expected %q", end)
}

// parseMiscAndDoctype consumes comments, PIs, whitespace and at most one
// DOCTYPE declaration before the root element.
func (p *parser) parseMiscAndDoctype(doc *Node) error {
	for {
		p.skipSpace()
		switch {
		case p.hasPrefix("<!--"):
			c, err := p.parseComment()
			if err != nil {
				return err
			}
			doc.AppendChild(c)
		case p.hasPrefix("<?"):
			pi, err := p.parsePI()
			if err != nil {
				return err
			}
			doc.AppendChild(pi)
		case p.hasPrefix("<!DOCTYPE"):
			if err := p.skipDoctype(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// parseMisc consumes trailing comments, PIs and whitespace after the root.
func (p *parser) parseMisc(doc *Node) error {
	for {
		p.skipSpace()
		switch {
		case p.hasPrefix("<!--"):
			c, err := p.parseComment()
			if err != nil {
				return err
			}
			doc.AppendChild(c)
		case p.hasPrefix("<?"):
			pi, err := p.parsePI()
			if err != nil {
				return err
			}
			doc.AppendChild(pi)
		default:
			return nil
		}
	}
}

// skipDoctype skips a DOCTYPE declaration, including a bracketed internal
// subset. Entity declarations inside it are ignored; only the five
// predefined entities and character references are recognized in content.
func (p *parser) skipDoctype() error {
	p.advance(len("<!DOCTYPE"))
	depth := 0
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				p.advance(1)
				return nil
			}
		case '"', '\'':
			q := p.src[p.pos]
			p.advance(1)
			for p.pos < len(p.src) && p.src[p.pos] != q {
				p.advance(1)
			}
		}
		p.advance(1)
	}
	return p.errf("unterminated DOCTYPE")
}

func (p *parser) parseComment() (*Node, error) {
	line, col := p.line, p.col
	p.advance(4) // <!--
	start := p.pos
	for p.pos < len(p.src) {
		if p.hasPrefix("--") {
			data := string(p.src[start:p.pos])
			if err := p.expect("-->"); err != nil {
				return nil, p.errf("'--' not allowed inside comment")
			}
			return &Node{Type: CommentNode, Data: data, Line: line, Col: col}, nil
		}
		p.advance(1)
	}
	return nil, p.errf("unterminated comment")
}

func (p *parser) parsePI() (*Node, error) {
	line, col := p.line, p.col
	p.advance(2) // <?
	target, err := p.parseName()
	if err != nil {
		return nil, err
	}
	if strings.EqualFold(target, "xml") {
		return nil, p.errf("reserved PI target %q", target)
	}
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		if p.hasPrefix("?>") {
			data := string(p.src[start:p.pos])
			p.advance(2)
			return &Node{Type: PINode, Name: target, Data: data, Line: line, Col: col}, nil
		}
		p.advance(1)
	}
	return nil, p.errf("unterminated processing instruction")
}

type rawAttr struct {
	name      string
	value     string
	line, col int
}

func (p *parser) parseElement() (*Node, error) {
	if p.canceled() {
		return nil, p.errf("parse canceled")
	}
	line, col := p.line, p.col
	if err := p.expect("<"); err != nil {
		return nil, err
	}
	p.depth++
	defer func() { p.depth-- }()
	if p.limits.MaxDepth > 0 && p.depth > p.limits.MaxDepth {
		return nil, p.errf("element nesting depth exceeds the limit of %d", p.limits.MaxDepth)
	}
	qname, err := p.parseName()
	if err != nil {
		return nil, err
	}
	var attrs []rawAttr
	for {
		hadSpace := p.pos < len(p.src) && isSpace(p.src[p.pos])
		p.skipSpace()
		if p.peek() == '>' || p.hasPrefix("/>") {
			break
		}
		if !hadSpace {
			return nil, p.errf("expected whitespace before attribute in <%s>", qname)
		}
		aline, acol := p.line, p.col
		aname, err := p.parseName()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if err := p.expect("="); err != nil {
			return nil, err
		}
		p.skipSpace()
		aval, err := p.parseAttValue()
		if err != nil {
			return nil, err
		}
		for _, prev := range attrs {
			if prev.name == aname {
				return nil, p.errf("duplicate attribute %q in <%s>", aname, qname)
			}
		}
		if p.limits.MaxAttrs > 0 && len(attrs) >= p.limits.MaxAttrs {
			return nil, p.errf("element <%s> exceeds the limit of %d attributes", qname, p.limits.MaxAttrs)
		}
		attrs = append(attrs, rawAttr{aname, aval, aline, acol})
	}

	// Push a namespace frame populated from xmlns attributes.
	frame := map[string]string{}
	for _, a := range attrs {
		if a.name == "xmlns" {
			frame[""] = a.value
		} else if strings.HasPrefix(a.name, "xmlns:") {
			px := a.name[len("xmlns:"):]
			if px == "xmlns" {
				return nil, p.errf("cannot declare prefix xmlns")
			}
			if a.value == "" {
				return nil, p.errf("namespace prefix %q cannot be undeclared to empty", px)
			}
			frame[px] = a.value
		}
	}
	p.ns = append(p.ns, frame)
	defer func() { p.ns = p.ns[:len(p.ns)-1] }()

	prefix, local := splitQName(qname)
	elem := &Node{Type: ElementNode, Name: local, Prefix: prefix, Line: line, Col: col}
	if prefix != "" {
		uri, ok := p.lookupNS(prefix)
		if !ok {
			return nil, p.errf("undeclared namespace prefix %q", prefix)
		}
		elem.URI = uri
	} else if uri, ok := p.lookupNS(""); ok {
		elem.URI = uri
	}
	for _, a := range attrs {
		apre, alocal := splitQName(a.name)
		var uri string
		if a.name == "xmlns" || apre == "xmlns" {
			uri = XMLNSNamespace
		} else if apre != "" {
			u, ok := p.lookupNS(apre)
			if !ok {
				return nil, p.errf("undeclared namespace prefix %q", apre)
			}
			uri = u
		}
		an := &Node{Type: AttrNode, Name: alocal, Prefix: apre, URI: uri,
			Data: a.value, Parent: elem, Line: a.line, Col: a.col}
		elem.Attr = append(elem.Attr, an)
	}

	if p.hasPrefix("/>") {
		p.advance(2)
		return elem, nil
	}
	if err := p.expect(">"); err != nil {
		return nil, err
	}
	if err := p.parseContent(elem); err != nil {
		return nil, err
	}
	// closing tag
	endName, err := p.parseName()
	if err != nil {
		return nil, err
	}
	if endName != qname {
		return nil, p.errf("mismatched end tag </%s>, expected </%s>", endName, qname)
	}
	p.skipSpace()
	if err := p.expect(">"); err != nil {
		return nil, err
	}
	return elem, nil
}

// parseContent parses element content up to (and consuming) the "</" of the
// matching end tag.
func (p *parser) parseContent(parent *Node) error {
	var text strings.Builder
	tline, tcol := p.line, p.col
	flush := func() {
		if text.Len() > 0 {
			parent.AppendChild(&Node{Type: TextNode, Data: text.String(), Line: tline, Col: tcol})
			text.Reset()
		}
	}
	for p.pos < len(p.src) {
		switch {
		case p.hasPrefix("</"):
			flush()
			p.advance(2)
			return nil
		case p.hasPrefix("<!--"):
			flush()
			c, err := p.parseComment()
			if err != nil {
				return err
			}
			parent.AppendChild(c)
			tline, tcol = p.line, p.col
		case p.hasPrefix("<![CDATA["):
			if text.Len() == 0 {
				tline, tcol = p.line, p.col
			}
			p.advance(9)
			start := p.pos
			for p.pos < len(p.src) && !p.hasPrefix("]]>") {
				p.advance(1)
			}
			if p.pos >= len(p.src) {
				return p.errf("unterminated CDATA section")
			}
			text.Write(p.src[start:p.pos])
			p.advance(3)
		case p.hasPrefix("<?"):
			flush()
			pi, err := p.parsePI()
			if err != nil {
				return err
			}
			parent.AppendChild(pi)
			tline, tcol = p.line, p.col
		case p.peek() == '<':
			flush()
			child, err := p.parseElement()
			if err != nil {
				return err
			}
			parent.AppendChild(child)
			tline, tcol = p.line, p.col
		case p.peek() == '&':
			if text.Len() == 0 {
				tline, tcol = p.line, p.col
			}
			s, err := p.parseReference()
			if err != nil {
				return err
			}
			text.WriteString(s)
		default:
			if p.hasPrefix("]]>") {
				return p.errf("']]>' not allowed in content")
			}
			if text.Len() == 0 {
				tline, tcol = p.line, p.col
			}
			text.WriteByte(p.src[p.pos])
			p.advance(1)
		}
	}
	return p.errf("unexpected end of input inside <%s>", parent.FullName())
}

func (p *parser) parseAttValue() (string, error) {
	q := p.peek()
	if q != '"' && q != '\'' {
		return "", p.errf("expected quoted attribute value")
	}
	p.advance(1)
	var b strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == q:
			p.advance(1)
			return b.String(), nil
		case c == '<':
			return "", p.errf("'<' not allowed in attribute value")
		case c == '&':
			s, err := p.parseReference()
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		case c == '\t' || c == '\n' || c == '\r':
			// attribute-value normalization
			b.WriteByte(' ')
			p.advance(1)
		default:
			b.WriteByte(c)
			p.advance(1)
		}
	}
	return "", p.errf("unterminated attribute value")
}

// parseReference parses an entity or character reference starting at '&'.
func (p *parser) parseReference() (string, error) {
	p.advance(1) // &
	if p.peek() == '#' {
		p.advance(1)
		base := 10
		if p.peek() == 'x' || p.peek() == 'X' {
			base = 16
			p.advance(1)
		}
		var code rune
		digits := 0
		for p.pos < len(p.src) && p.src[p.pos] != ';' {
			c := p.src[p.pos]
			var d rune = -1
			switch {
			case c >= '0' && c <= '9':
				d = rune(c - '0')
			case base == 16 && c >= 'a' && c <= 'f':
				d = rune(c-'a') + 10
			case base == 16 && c >= 'A' && c <= 'F':
				d = rune(c-'A') + 10
			}
			if d < 0 {
				return "", p.errf("invalid character reference")
			}
			code = code*rune(base) + d
			digits++
			if code > utf8.MaxRune {
				return "", p.errf("character reference out of range")
			}
			p.advance(1)
		}
		if digits == 0 || p.peek() != ';' {
			return "", p.errf("malformed character reference")
		}
		p.advance(1)
		if !utf8.ValidRune(code) || code == 0 {
			return "", p.errf("invalid character reference value %d", code)
		}
		return string(code), nil
	}
	name, err := p.parseName()
	if err != nil {
		return "", p.errf("malformed entity reference")
	}
	if p.peek() != ';' {
		return "", p.errf("entity reference %q missing ';'", name)
	}
	p.advance(1)
	switch name {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "apos":
		return "'", nil
	case "quot":
		return "\"", nil
	}
	return "", p.errf("undefined entity &%s;", name)
}
