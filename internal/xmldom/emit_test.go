package xmldom

import (
	"testing"
)

// driveEmitter plays a representative event script covering elements with
// mixed/structured/empty content, html void + raw-text elements, namespaced
// elements, attribute overwrites, late attributes, comments, PIs, and raw
// text.
func driveEmitter(em Emitter) {
	em.PI("xml-stylesheet", `href="s.css" type="text/css"`)
	em.Comment(" head ")
	em.BeginElement("", "", "html")
	em.BeginElement("", "", "head")
	em.BeginElement("", "", "meta")
	em.Attr("", "", "charset", "utf-8")
	em.EndElement()
	em.BeginElement("", "", "title")
	em.Text("A & B <title>", false)
	em.EndElement()
	em.BeginElement("", "", "style")
	em.Text("body > p { color: \"red\" }", false)
	em.EndElement()
	em.BeginElement("", "", "script")
	em.Text("if (a < b && c > d) { go() }", false)
	em.EndElement()
	em.EndElement() // head
	em.BeginElement("", "", "body")
	em.Attr("", "", "class", "x")
	em.Attr("", "", "class", "y") // overwrite in place
	em.Attr("", "", "id", "main")
	em.BeginElement("", "", "p")
	em.Text("mixed ", false)
	em.BeginElement("", "", "b")
	em.Text("content", false)
	em.EndElement()
	em.Text(" here\ttab \"q\" \r\n", false)
	em.EndElement()
	em.BeginElement("", "", "br")
	em.EndElement()
	em.BeginElement("", "", "div")
	em.EndElement() // empty non-void
	em.BeginElement("", "", "ul")
	em.Text("\n  ", false) // whitespace-only between structured children
	em.BeginElement("", "", "li")
	em.Text("one", false)
	em.EndElement()
	em.Text("\n  ", false)
	em.BeginElement("", "", "li")
	em.Attr("", "", "data-v", "<&>\"'")
	em.EndElement()
	em.Text("\n", false)
	em.EndElement() // ul
	em.BeginElement("x", "urn:x", "widget")
	em.Attr("x", "urn:x", "kind", "k1")
	em.BeginElement("", "", "span")
	em.EndElement()
	// late attribute, after child content
	em.Attr("", "", "late", "yes")
	em.EndElement()
	em.BeginElement("", "", "pre")
	em.Text("<raw & unescaped>", true)
	em.EndElement()
	em.Comment(" trailing comment ")
	em.PI("target", "")
	em.EndElement() // body
	em.EndElement() // html
	em.Comment(" tail ")
}

func emitterOptionMatrix() []WriteOptions {
	var opts []WriteOptions
	for _, method := range []string{"xml", "html", "text"} {
		for _, indent := range []string{"", "  "} {
			for _, omit := range []bool{false, true} {
				opts = append(opts, WriteOptions{Method: method, Indent: indent, OmitDecl: omit})
			}
		}
	}
	opts = append(opts,
		WriteOptions{Method: "html", Indent: "  ", DoctypePublic: "-//W3C//DTD HTML 4.01//EN", DoctypeSystem: "http://www.w3.org/TR/html4/strict.dtd"},
		WriteOptions{Method: "xml", DoctypeSystem: "model.dtd"},
		WriteOptions{Method: "html", DoctypePublic: "-//X//Y//EN"},
	)
	return opts
}

// TestByteEmitterMatchesTreeSerialization drives the same event stream into
// both sinks and requires byte-identical serialization for every output
// option combination.
func TestByteEmitterMatchesTreeSerialization(t *testing.T) {
	doc := NewDocument()
	tree := NewTreeEmitter(doc)
	driveEmitter(tree)

	for _, opt := range emitterOptionMatrix() {
		want := SerializeToString(doc, opt)

		be := NewByteEmitter()
		driveEmitter(be)
		got := string(be.Serialize(opt))
		// Serialize must be repeatable on the same tape.
		again := string(be.Serialize(opt))
		be.Release()

		if got != want {
			t.Errorf("opts %+v:\n byte emitter: %q\n tree path:    %q", opt, got, want)
		}
		if again != got {
			t.Errorf("opts %+v: second Serialize differs", opt)
		}
	}
}

// TestByteEmitterCopyTreeMatches checks CopyTree equivalence for a parsed
// subtree, including attributes and nested structure.
func TestByteEmitterCopyTreeMatches(t *testing.T) {
	src, err := Parse([]byte(`<root a="1" b="&lt;2&gt;"><child><!-- c --><?pi data?>text &amp; more<leaf/></child>tail</root>`))
	if err != nil {
		t.Fatal(err)
	}
	root := src.DocumentElement()

	doc := NewDocument()
	tree := NewTreeEmitter(doc)
	tree.BeginElement("", "", "wrap")
	tree.CopyTree(root)
	tree.EndElement()

	be := NewByteEmitter()
	defer be.Release()
	be.BeginElement("", "", "wrap")
	be.CopyTree(root)
	be.EndElement()

	for _, opt := range []WriteOptions{{OmitDecl: true}, {Indent: "  "}, {Method: "html"}} {
		want := SerializeToString(doc, opt)
		got := string(be.Serialize(opt))
		if got != want {
			t.Errorf("opts %+v:\n got  %q\n want %q", opt, got, want)
		}
	}
}

// TestEmitterAttrSemantics pins the DOM-mirroring contract: Attr outside an
// open element fails, overwrites keep position, and namespaced attributes
// are distinct from same-named no-namespace ones.
func TestEmitterAttrSemantics(t *testing.T) {
	for _, mk := range []struct {
		name string
		make func() Emitter
	}{
		{"tree", func() Emitter { return NewTreeEmitter(NewDocument()) }},
		{"byte", func() Emitter { return NewByteEmitter() }},
	} {
		em := mk.make()
		if em.OpenElement() {
			t.Errorf("%s: OpenElement true before any element", mk.name)
		}
		if em.Attr("", "", "a", "v") {
			t.Errorf("%s: Attr succeeded with no open element", mk.name)
		}
		em.BeginElement("", "", "e")
		if !em.OpenElement() {
			t.Errorf("%s: OpenElement false inside element", mk.name)
		}
		if !em.Attr("", "", "a", "v") {
			t.Errorf("%s: Attr failed inside element", mk.name)
		}
		em.EndElement()
		if em.OpenElement() {
			t.Errorf("%s: OpenElement true after EndElement", mk.name)
		}
	}

	// Overwrite keeps original position; ns attr is distinct.
	be := NewByteEmitter()
	defer be.Release()
	be.BeginElement("", "", "e")
	be.Attr("", "", "a", "1")
	be.Attr("", "", "b", "2")
	be.Attr("p", "urn:p", "a", "3")
	be.Attr("", "", "a", "9")
	be.EndElement()
	got := string(be.Serialize(WriteOptions{OmitDecl: true}))
	want := `<e a="9" b="2" p:a="3"/>`
	if got != want {
		t.Errorf("attr overwrite: got %q want %q", got, want)
	}
}

func TestByteEmitterRootElement(t *testing.T) {
	be := NewByteEmitter()
	defer be.Release()
	if _, _, ok := be.RootElement(); ok {
		t.Error("RootElement ok on empty tape")
	}
	be.Comment("lead")
	be.BeginElement("h", "urn:h", "HTML")
	be.BeginElement("", "", "inner")
	be.EndElement()
	be.EndElement()
	name, uri, ok := be.RootElement()
	if !ok || name != "HTML" || uri != "urn:h" {
		t.Errorf("RootElement = %q %q %v", name, uri, ok)
	}
}

func TestEscapeAppendHelpers(t *testing.T) {
	in := "a&b<c>d\re\tf\ng\"h\u00e9\u4e16"
	if got, want := string(appendEscText(nil, in)), EscapeText(in); got != want {
		t.Errorf("appendEscText: %q want %q", got, want)
	}
	if got, want := string(appendEscAttr(nil, in)), EscapeAttr(in); got != want {
		t.Errorf("appendEscAttr: %q want %q", got, want)
	}
	if got := string(appendEscText([]byte("x"), "plain")); got != "xplain" {
		t.Errorf("appendEscText prefix: %q", got)
	}
}
