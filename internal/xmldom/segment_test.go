package xmldom

import (
	"bytes"
	"testing"
)

// recordings used by the equivalence tests: each emits a static fragment
// the way compiled stylesheet literals would.
var segmentRecordings = map[string]func(Emitter){
	"text-only": func(e Emitter) {
		e.Text("hello ", false)
		e.Text("<raw>", true)
	},
	"element": func(e Emitter) {
		e.BeginElement("", "", "div")
		e.Attr("", "", "class", "box")
		e.Attr("", "", "id", "d&1")
		e.Text("payload", false)
		e.EndElement()
	},
	"nested-structured": func(e Emitter) {
		e.BeginElement("", "", "ul")
		e.BeginElement("", "", "li")
		e.Text("one", false)
		e.EndElement()
		e.BeginElement("", "", "li")
		e.Text("two", false)
		e.EndElement()
		e.EndElement()
	},
	"mixed-top": func(e Emitter) {
		e.Comment(" c ")
		e.PI("target", "data")
		e.Text("  ", false) // whitespace-only top-level text
		e.BeginElement("p", "urn:x", "note")
		e.EndElement()
	},
	"prefixed-attrs": func(e Emitter) {
		e.BeginElement("", "", "a")
		e.Attr("x", "urn:x", "k", "v")
		e.BeginElement("", "", "b")
		e.Attr("", "", "n", "w")
		e.EndElement()
		e.EndElement()
	},
}

// wrapped drives a recording into out twice — once inside an open element
// that already has an attribute, once at the top level — exercising the
// enclosing-element bookkeeping paths.
func emitWrapped(out Emitter, emit func(Emitter)) {
	out.BeginElement("", "", "root")
	out.Attr("", "", "pre", "1")
	emit(out)
	// Attribute set after the segment content: forces the arena
	// relocation path on the tape emitter.
	out.Attr("", "", "post", "2")
	out.EndElement()
	emit(out)
}

func TestAppendSegmentEquivalence(t *testing.T) {
	for name, rec := range segmentRecordings {
		seg := RecordSegment(rec)
		for _, opts := range []WriteOptions{
			{Method: "xml", OmitDecl: true},
			{Method: "xml", OmitDecl: true, Indent: "  "},
			{Method: "html"},
		} {
			// Reference: every event emitted individually.
			want := NewByteEmitter()
			emitWrapped(want, rec)
			wantBytes := want.Serialize(opts)
			want.Release()

			// Bulk: the pre-recorded segment appended in one copy.
			got := NewByteEmitter()
			emitWrapped(got, func(e Emitter) { e.(*ByteEmitter).AppendSegment(seg) })
			gotBytes := got.Serialize(opts)
			got.Release()

			if !bytes.Equal(wantBytes, gotBytes) {
				t.Errorf("%s (%+v): AppendSegment diverges\nwant %q\ngot  %q",
					name, opts, wantBytes, gotBytes)
			}
		}
	}
}

func TestSegmentReplayTree(t *testing.T) {
	for name, rec := range segmentRecordings {
		seg := RecordSegment(rec)

		wantDoc := NewDocument()
		emitWrapped(NewTreeEmitter(wantDoc), rec)

		gotDoc := NewDocument()
		te := NewTreeEmitter(gotDoc)
		emitWrapped(te, func(e Emitter) { seg.Replay(e) })

		opts := WriteOptions{Method: "xml", OmitDecl: true}
		want := SerializeToString(wantDoc, opts)
		got := SerializeToString(gotDoc, opts)
		if want != got {
			t.Errorf("%s: Replay diverges\nwant %q\ngot  %q", name, want, got)
		}
	}
}

func TestRecordSegmentUnbalancedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unbalanced recording")
		}
	}()
	RecordSegment(func(e Emitter) { e.BeginElement("", "", "open") })
}
