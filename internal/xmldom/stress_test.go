package xmldom

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDeepNesting(t *testing.T) {
	const depth = 2000
	src := strings.Repeat("<d>", depth) + "x" + strings.Repeat("</d>", depth)
	doc, err := ParseString(src)
	if err != nil {
		t.Fatalf("deep parse: %v", err)
	}
	n := doc.DocumentElement()
	count := 1
	for len(n.Elements()) > 0 {
		n = n.Elements()[0]
		count++
	}
	if count != depth {
		t.Errorf("depth = %d", count)
	}
	if doc.StringValue() != "x" {
		t.Errorf("leaf text lost")
	}
	// Serialization survives the same depth.
	out := doc.XML()
	if !strings.HasSuffix(out, strings.Repeat("</d>", 4)) {
		t.Error("serialization truncated")
	}
}

func TestManySiblings(t *testing.T) {
	const n = 5000
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < n; i++ {
		b.WriteString("<c/>")
	}
	b.WriteString("</r>")
	doc, err := ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(doc.DocumentElement().Children); got != n {
		t.Errorf("children = %d", got)
	}
}

func TestLargeAttributeValue(t *testing.T) {
	payload := strings.Repeat("ab&amp;", 10_000)
	doc, err := ParseString(`<e v="` + payload + `"/>`)
	if err != nil {
		t.Fatal(err)
	}
	v := doc.DocumentElement().AttrValue("v")
	if len(v) != 10_000*3 {
		t.Errorf("attr length = %d", len(v))
	}
	if !strings.HasPrefix(v, "ab&ab&") {
		t.Errorf("entity expansion wrong: %.12s", v)
	}
}

// TestCompareOrderIsStrictTotalOrder: over the nodes of a random tree,
// CompareOrder behaves like a strict total order consistent with a
// pre-order walk.
func TestCompareOrderIsStrictTotalOrder(t *testing.T) {
	f := func(seed int64) bool {
		doc := randomTree(seed)
		// Pre-order enumeration (elements and text).
		var walkOrder []*Node
		var walk func(n *Node)
		walk = func(n *Node) {
			walkOrder = append(walkOrder, n)
			for _, a := range n.Attr {
				walkOrder = append(walkOrder, a)
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(doc)
		for i := range walkOrder {
			for j := range walkOrder {
				got := CompareOrder(walkOrder[i], walkOrder[j])
				switch {
				case i == j && got != 0:
					return false
				case i < j && got != -1:
					return false
				case i > j && got != 1:
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestEscapeRoundTripProperty: any text survives EscapeText → parse, and
// any attribute value survives EscapeAttr → parse.
func TestEscapeRoundTripProperty(t *testing.T) {
	sanitize := func(s string) string {
		// Strip control characters the XML spec forbids entirely.
		return strings.Map(func(r rune) rune {
			if r < 0x20 && r != '\t' && r != '\n' && r != '\r' {
				return -1
			}
			return r
		}, s)
	}
	f := func(raw string) bool {
		s := sanitize(raw)
		doc, err := ParseString("<e a=\"" + EscapeAttr(s) + "\">" + EscapeText(s) + "</e>")
		if err != nil {
			t.Logf("parse failed for %q: %v", s, err)
			return false
		}
		e := doc.DocumentElement()
		// Text round-trips except for \r\n normalization which we do not
		// apply on input; compare with CR folded.
		want := s
		if e.AttrValue("a") != strings.Map(func(r rune) rune {
			// attribute-value normalization turns tab/newline into space
			// unless character-referenced; EscapeAttr references them, so
			// the exact value must survive.
			return r
		}, want) {
			t.Logf("attr %q != %q", e.AttrValue("a"), want)
			return false
		}
		if e.StringValue() != want {
			t.Logf("text %q != %q", e.StringValue(), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPrettyIsStable(t *testing.T) {
	// Pretty-printing an already-pretty document yields the same text.
	src := `<a><b><c>x</c></b><d/></a>`
	doc := MustParseString(src)
	once := Pretty(doc)
	doc2 := MustParseString(once)
	twice := Pretty(doc2)
	if once != twice {
		t.Errorf("pretty not idempotent:\n%s\nvs\n%s", once, twice)
	}
}
