package xmldom

// The indexed document layer: after a tree is fully built, Freeze walks it
// once, assigns every node a monotone document-order stamp, interns element
// and attribute names into symbol ids, and builds per-document ID and
// element-name indexes. A frozen tree is effectively immutable — the
// exported mutators panic on it — which is what makes a document safely
// shareable across goroutines (the XSLT engine, the publication pipeline
// and the HTTP server all rely on this). Mutation after freeze is an
// explicit copy-on-write step: Editable returns a deep, unfrozen copy.
//
// Document identity is a process-global counter assigned when a document
// node is created (and lazily for detached subtree roots), so cross-tree
// document-order comparisons are deterministic across runs instead of
// depending on allocator addresses.

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Sym is an interned name symbol. Two names are equal iff their symbols
// are equal; 0 is reserved for "not interned".
type Sym uint32

// symtab is the process-global name intern table, shared by every
// document so symbols are comparable across trees.
var symtab = struct {
	sync.RWMutex
	ids   map[string]Sym
	names []string
}{ids: map[string]Sym{}, names: []string{""}} // names[0] = "" for Sym 0

// Intern returns the symbol for name, assigning one on first use.
func Intern(name string) Sym {
	symtab.RLock()
	s, ok := symtab.ids[name]
	symtab.RUnlock()
	if ok {
		return s
	}
	symtab.Lock()
	defer symtab.Unlock()
	if s, ok = symtab.ids[name]; ok {
		return s
	}
	s = Sym(len(symtab.names))
	symtab.names = append(symtab.names, name)
	symtab.ids[name] = s
	return s
}

// lookupSym returns the symbol for name without interning it; 0 when the
// name has never been interned (and therefore occurs in no frozen tree).
func lookupSym(name string) Sym {
	symtab.RLock()
	s := symtab.ids[name]
	symtab.RUnlock()
	return s
}

// LookupSym returns the symbol for name without interning it; 0 when the
// name has never been interned. Useful for lookups keyed by Sym (e.g.
// template dispatch) where an unknown name should miss rather than grow
// the symbol table.
func LookupSym(name string) Sym { return lookupSym(name) }

// Sym returns n's interned name symbol when the node belongs to a frozen
// tree, otherwise the symbol table lookup for its local name (0 when never
// interned). Unlike NameSym it never interns.
func (n *Node) Sym() Sym {
	if n.sym != 0 {
		return n.sym
	}
	return lookupSym(n.Name)
}

// Name returns the interned string for s.
func (s Sym) Name() string {
	symtab.RLock()
	defer symtab.RUnlock()
	if int(s) < len(symtab.names) {
		return symtab.names[s]
	}
	return ""
}

// docIDs is the process-global document identity counter.
var docIDs atomic.Uint64

// DocIndex carries a tree's identity and, once frozen, its document-order
// stamps and lookup indexes.
type DocIndex struct {
	id     uint64 // creation-ordered tree identity
	root   *Node
	frozen bool

	byID   map[string]*Node // value of the no-namespace "id" attribute → element (first wins)
	byName map[Sym][]*Node  // interned element local name → elements in document order
	nodes  int              // number of stamped nodes
}

// ID returns the tree's identity (creation-ordered, unique per process).
func (ix *DocIndex) ID() uint64 { return ix.id }

// Root returns the root node the index was built from.
func (ix *DocIndex) Root() *Node { return ix.root }

// Len returns the number of stamped nodes (elements, attributes, text,
// comments, PIs and the root itself).
func (ix *DocIndex) Len() int { return ix.nodes }

// ByID returns the element whose no-namespace "id" attribute has the
// given value, or nil. Only meaningful on a frozen index.
func (ix *DocIndex) ByID(id string) *Node { return ix.byID[id] }

// ElementsByName returns every element of the document with the given
// local name, in document order. The returned slice is shared with the
// index and must not be modified.
func (ix *DocIndex) ElementsByName(name string) []*Node {
	s := lookupSym(name)
	if s == 0 {
		return nil
	}
	return ix.byName[s]
}

// newDocIdent allocates an identity-only index (no stamps yet).
func newDocIdent(root *Node) *DocIndex {
	return &DocIndex{id: docIDs.Add(1), root: root}
}

// treeIdent returns the identity of the tree rooted at root, assigning
// one lazily for detached roots created without NewDocument. The lazy
// write means unfrozen trees keep their existing contract: they are not
// safe for concurrent use.
func treeIdent(root *Node) uint64 {
	if root.idx == nil {
		root.idx = newDocIdent(root)
	}
	return root.idx.id
}

// Freeze indexes the tree rooted at n and marks it immutable: every node
// gets a document-order stamp and a subtree-end stamp, element and
// attribute names are interned, and the per-document ID and element-name
// indexes are built. n must be the root of its tree (no parent). Freeze
// is idempotent; freezing an already-frozen tree returns its index.
//
// After Freeze the exported mutators (AppendChild, SetAttr, RemoveChild,
// ...) panic; use Editable to obtain a mutable deep copy. A frozen tree
// is safe for concurrent readers.
func Freeze(n *Node) *DocIndex {
	if n.idx != nil && n.idx.frozen {
		return n.idx
	}
	if n.Parent != nil {
		panic("xmldom: Freeze requires the root of a tree (node has a parent)")
	}
	ix := n.idx
	if ix == nil {
		ix = newDocIdent(n)
	}
	ix.root = n
	ix.byID = map[string]*Node{}
	ix.byName = map[Sym][]*Node{}
	var stamp uint64
	var walk func(m *Node)
	walk = func(m *Node) {
		stamp++
		m.ord = stamp
		m.idx = ix
		if m.Type == ElementNode || m.Type == AttrNode || m.Type == PINode {
			m.sym = Intern(m.Name)
		}
		if m.Type == ElementNode {
			ix.byName[m.sym] = append(ix.byName[m.sym], m)
		}
		for _, a := range m.Attr {
			stamp++
			a.ord = stamp
			a.end = stamp
			a.idx = ix
			a.sym = Intern(a.Name)
			if a.Name == "id" && a.URI == "" && m.Type == ElementNode {
				if _, dup := ix.byID[a.Data]; !dup {
					ix.byID[a.Data] = m
				}
			}
		}
		for _, c := range m.Children {
			walk(c)
		}
		m.end = stamp
	}
	walk(n)
	ix.nodes = int(stamp)
	ix.frozen = true
	return ix
}

// Freeze is the method form of the package-level Freeze.
func (n *Node) Freeze() *DocIndex { return Freeze(n) }

// Frozen reports whether n belongs to a frozen (indexed, immutable) tree.
func (n *Node) Frozen() bool { return n.idx != nil && n.idx.frozen }

// Index returns the document index n belongs to, or nil when its tree has
// not been frozen.
func (n *Node) Index() *DocIndex {
	if n.idx != nil && n.idx.frozen {
		return n.idx
	}
	return nil
}

// DocOrder returns n's document-order stamp (1-based within its frozen
// tree), or 0 when the tree is not frozen. Stamps order nodes exactly as
// CompareOrder does: an element precedes its attributes, which precede
// its children.
func (n *Node) DocOrder() uint64 {
	if n.Frozen() {
		return n.ord
	}
	return 0
}

// NameSym returns the interned symbol of n's local name, interning it on
// first use for unfrozen nodes.
func (n *Node) NameSym() Sym {
	if n.sym != 0 {
		return n.sym
	}
	return Intern(n.Name)
}

// Editable returns a deep, mutable copy of n with all index state
// cleared — the copy-on-write escape hatch for frozen trees. The copy is
// detached (Parent is nil).
func (n *Node) Editable() *Node { return n.Clone() }

// assertMutable panics when n belongs to a frozen tree. It is called by
// every exported mutator so the freeze contract fails loudly instead of
// silently corrupting the index.
func (n *Node) assertMutable() {
	if n.idx != nil && n.idx.frozen {
		panic("xmldom: mutation of a frozen document; use Editable() for a mutable copy")
	}
}

// IndexedDescendants returns the descendant elements of n with the given
// local name using the frozen tree's name index (ok=false when n's tree
// is not frozen, in which case callers walk the tree instead). When
// includeSelf is true and n itself is a matching element it is included.
// The result shares memory with the index and must not be modified; it
// is in document order and may contain elements of any namespace URI
// with that local name.
func (n *Node) IndexedDescendants(name string, includeSelf bool) ([]*Node, bool) {
	if !n.Frozen() {
		return nil, false
	}
	list := n.idx.byName[lookupSym(name)]
	if len(list) == 0 {
		return nil, true
	}
	lo := n.ord + 1
	if includeSelf {
		lo = n.ord
	}
	// list is stamped in document order: binary-search the subtree window.
	i := sort.Search(len(list), func(k int) bool { return list[k].ord >= lo })
	j := sort.Search(len(list), func(k int) bool { return list[k].ord > n.end })
	if i >= j {
		return nil, true
	}
	return list[i:j:j], true
}
