package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"goldweb/internal/core"
	"goldweb/internal/htmlgen"
)

// TestShutdownCancelsInflightPublish is the regression test for the
// publish-goroutine leak: a publication hanging inside the pipeline
// while Serve(ctx) shuts down must be canceled (its context fires) and
// awaited (the publication WaitGroup drains) instead of leaking.
func TestShutdownCancelsInflightPublish(t *testing.T) {
	entered := make(chan struct{})
	released := make(chan struct{})
	srv := New(core.SampleSales(),
		WithRequestTimeout(0), // no request timeout: only shutdown can stop the publish
		WithPublishFunc(func(ctx context.Context, m *core.Model, opts htmlgen.Options) (*htmlgen.Site, error) {
			close(entered)
			<-ctx.Done() // a context-aware pipeline stops here
			close(released)
			return nil, ctx.Err()
		}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.ServeListener(ctx, ln) }()

	// Fire a request that blocks inside the publish; don't wait for it.
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/single")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("publish never entered")
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("shutdown returned %v, want nil (publish must drain)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down while a publish was in flight")
	}
	select {
	case <-released:
	case <-time.After(time.Second):
		t.Fatal("publish context was never canceled: goroutine leaked")
	}
	// The WaitGroup must have drained by the time Serve returned.
	drainCtx, dcancel := context.WithTimeout(context.Background(), time.Second)
	defer dcancel()
	if !srv.awaitPublishes(drainCtx) {
		t.Error("publication goroutines still alive after shutdown")
	}
}

// TestShedAndTimeoutResponsesAreConsistent pins the error-response
// contract: both the 503 load shed and the 504 timeout carry
// Retry-After, and both answer with a JSON body when the client sends
// Accept: application/json.
func TestShedAndTimeoutResponsesAreConsistent(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	defer close(release)
	srv := New(core.SampleSales(),
		WithMaxInflight(1),
		WithRequestTimeout(100*time.Millisecond),
		WithPublishFunc(func(ctx context.Context, m *core.Model, opts htmlgen.Options) (*htmlgen.Site, error) {
			entered <- struct{}{}
			// Hang until the test ends: every publish deterministically
			// outlives the request timeout.
			<-release
			return nil, errors.New("released")
		}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the only slot.
	slow := make(chan struct{})
	go func() {
		defer close(slow)
		resp, err := ts.Client().Get(ts.URL + "/single")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-entered

	check := func(name string, resp *http.Response, wantCode int) {
		t.Helper()
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantCode {
			t.Fatalf("%s: status %d, want %d (%s)", name, resp.StatusCode, wantCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s: missing Retry-After", name)
		}
		if !strings.Contains(resp.Header.Get("Content-Type"), "application/json") {
			t.Errorf("%s: content type %q, want JSON", name, resp.Header.Get("Content-Type"))
		}
		var payload struct {
			Error  string `json:"error"`
			Status int    `json:"status"`
		}
		if err := json.Unmarshal(body, &payload); err != nil {
			t.Errorf("%s: body %q is not JSON: %v", name, body, err)
		} else if payload.Status != wantCode || payload.Error == "" {
			t.Errorf("%s: payload %+v", name, payload)
		}
	}

	// 503: the limiter slot is held, a JSON-accepting client is shed.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/schema.xsd", nil)
	req.Header.Set("Accept", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	check("503 shed", resp, http.StatusServiceUnavailable)
	<-slow // first request 504s once its timeout fires, freeing the slot

	// 504: a fresh hanging publish times out for a JSON-accepting client.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/single?focus=f1", nil)
	req.Header.Set("Accept", "application/json")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	check("504 timeout", resp, http.StatusGatewayTimeout)

	// Plain clients still get text bodies.
	resp, err = ts.Client().Get(ts.URL + "/site/index.html")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("plain 504: status %d (%s)", resp.StatusCode, body)
	}
	if strings.Contains(resp.Header.Get("Content-Type"), "json") {
		t.Errorf("plain client got JSON: %q", resp.Header.Get("Content-Type"))
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("plain 504 missing Retry-After")
	}
}

// TestTransientPublishFailureIsNotCached covers the publication LRU
// under an intermittently failing PublishFunc: a transient error must
// not be cached, must not poison the generation key (the same key
// succeeds on retry), and the failure must not occupy an LRU slot.
func TestTransientPublishFailureIsNotCached(t *testing.T) {
	var calls atomic.Int64
	injected := errors.New("transient backend wobble")
	srv := New(core.SampleSales(),
		WithCacheSize(4),
		WithPublishFunc(func(ctx context.Context, m *core.Model, opts htmlgen.Options) (*htmlgen.Site, error) {
			if calls.Add(1) == 1 {
				return nil, injected
			}
			return htmlgen.Publish(m, opts)
		}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body, _ := get(t, ts, "/single")
	if code != http.StatusInternalServerError || !strings.Contains(body, "wobble") {
		t.Fatalf("transient failure: %d %q", code, body)
	}
	if got := srv.cache.len(); got != 0 {
		t.Fatalf("cache holds %d entries after a failed publish, want 0", got)
	}

	// Retry under the SAME generation key must republish and succeed.
	if code, _, _ := get(t, ts, "/single"); code != http.StatusOK {
		t.Fatalf("retry after transient failure: %d", code)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("publish calls = %d, want 2 (failure must not be cached)", got)
	}
	if got := srv.cache.len(); got != 1 {
		t.Fatalf("cache length %d after recovery, want 1", got)
	}
	// Third hit is warm: no new publish.
	if code, _, _ := get(t, ts, "/single"); code != http.StatusOK {
		t.Fatal("warm hit failed")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("warm hit republished (calls=%d)", got)
	}

	// A model swap bumps the generation; the old failure leaves no trace.
	srv.SetModel(core.SampleHospital())
	if code, body, _ := get(t, ts, "/single"); code != http.StatusOK || !strings.Contains(body, "Hospital") {
		t.Errorf("post-swap publish: %d %.80s", code, body)
	}
}

// TestStagedSwapCommitAndRollback exercises the staged swap surface
// the catalog builds on: Stage verifies without touching the live
// snapshot, Commit installs atomically with a generation bump, and a
// failed Stage leaves the old state fully intact (rollback is "drop
// the staged value").
func TestStagedSwapCommitAndRollback(t *testing.T) {
	srv := New(core.SampleSales())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	gen0 := srv.Generation()

	// A failing stage: invalid model (dangling dimension reference in
	// the document). ValidateDocument catches it at snapshot build.
	bad := core.SampleSales()
	bad.Facts[0].SharedAggs[0].DimClass = "ghost"
	if _, err := srv.Stage(context.Background(), bad); err == nil {
		t.Fatal("staging an invalid model succeeded")
	}
	if got := srv.Generation(); got != gen0 {
		t.Fatalf("failed stage bumped generation %d → %d", gen0, got)
	}
	if _, body, _ := get(t, ts, "/site/index.html"); !strings.Contains(body, "Sales DW") {
		t.Fatal("failed stage disturbed the live snapshot")
	}

	// A canceled stage also leaves no trace.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Stage(canceled, core.SampleHospital()); err == nil {
		t.Fatal("staging under a canceled context succeeded")
	}
	if got := srv.Generation(); got != gen0 {
		t.Fatalf("canceled stage bumped generation to %d", got)
	}

	// A good stage + commit swaps atomically and bumps the generation.
	st, err := srv.Stage(context.Background(), core.SampleHospital())
	if err != nil {
		t.Fatal(err)
	}
	// Not installed until Commit.
	if _, body, _ := get(t, ts, "/site/index.html"); !strings.Contains(body, "Sales DW") {
		t.Fatal("stage installed before commit")
	}
	gen1 := st.Commit()
	if gen1 <= gen0 {
		t.Fatalf("commit generation %d not past %d", gen1, gen0)
	}
	code, body, _ := get(t, ts, "/site/index.html")
	if code != http.StatusOK || !strings.Contains(body, "Hospital DW") {
		t.Fatalf("post-commit site: %d %.80s", code, body)
	}
}

// TestGenerationHeaderIsMonotonic asserts the serving contract the
// chaos soak leans on: every snapshot-derived response carries the
// generation it was served from, and a client never observes a
// regression across swaps.
func TestGenerationHeaderIsMonotonic(t *testing.T) {
	srv := New(core.SampleSales())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	last := uint64(0)
	models := []*core.Model{core.SampleHospital(), core.SampleSales()}
	for i := 0; i < 6; i++ {
		resp, err := ts.Client().Get(ts.URL + "/model.xml")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		h := resp.Header.Get(GenerationHeader)
		gen, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			t.Fatalf("bad %s header %q: %v", GenerationHeader, h, err)
		}
		if gen < last {
			t.Fatalf("generation regressed %d → %d", last, gen)
		}
		last = gen
		srv.SetModel(models[i%2])
	}
	if last < 6 {
		t.Errorf("final generation %d, want >= 6 after 6 swaps", last)
	}
}

// TestStaleMarkingSetsHeaders covers the graceful-degradation headers:
// a server marked stale serves its last-good content with Warning and
// X-Goldweb-Stale until the marking is cleared.
func TestStaleMarkingSetsHeaders(t *testing.T) {
	srv := New(core.SampleSales())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := ts.Client().Get(ts.URL + "/model.xml")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get(StaleHeader) != "" || resp.Header.Get("Warning") != "" {
		t.Fatal("fresh server claims staleness")
	}

	srv.MarkStale("reload failing: injected")
	resp, _ = ts.Client().Get(ts.URL + "/model.xml")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "<goldmodel") {
		t.Fatalf("stale server stopped serving: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(StaleHeader); !strings.Contains(got, "injected") {
		t.Errorf("%s = %q", StaleHeader, got)
	}
	if got := resp.Header.Get("Warning"); !strings.Contains(got, "110") {
		t.Errorf("Warning = %q", got)
	}

	srv.ClearStale()
	resp, _ = ts.Client().Get(ts.URL + "/model.xml")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get(StaleHeader) != "" {
		t.Error("stale header survives ClearStale")
	}
}

// TestEmptyServerAnswers503UntilFirstPublish covers NewEmpty: an entry
// whose first load keeps failing is addressable but not ready.
func TestEmptyServerAnswers503UntilFirstPublish(t *testing.T) {
	srv := NewEmpty()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, p := range []string{"/site/index.html", "/single", "/model.xml", "/pretty", "/validate", "/cwm.xmi"} {
		resp, err := ts.Client().Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s on empty server: %d, want 503", p, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s: empty-server 503 missing Retry-After", p)
		}
	}
	if srv.Ready() {
		t.Error("empty server claims ready")
	}

	st, err := srv.Stage(context.Background(), core.SampleSales())
	if err != nil {
		t.Fatal(err)
	}
	st.Commit()
	if code, _, _ := get(t, ts, "/site/index.html"); code != http.StatusOK {
		t.Errorf("after first commit: %d", code)
	}
	if !srv.Ready() {
		t.Error("server not ready after first commit")
	}
}
