package server

import (
	"goldweb/internal/artifact"
	"goldweb/internal/htmlgen"
)

// publishedSite is a presentation frozen for the edge: every page of
// the htmlgen.Site interned as a content-addressed artifact, so the
// serving path answers conditional requests from the hash-keyed ETag
// and writes pre-frozen (optionally precompressed) bytes without
// touching the publication pipeline again.
//
// Interning is what makes hot swaps cheap: a republish whose bytes did
// not change resolves to the same artifacts — same ETags (clients keep
// their 304s across generations), and no doubled memory while an old
// and a new generation briefly coexist during a staged swap.
type publishedSite struct {
	pages map[string]*artifact.Artifact
	order []string
	// size is the summed identity size — the siteCache accounting unit.
	size int64
	// fp is the htmlgen content fingerprint: equal fingerprints across
	// generations certify that every client-cached ETag stays valid.
	fp uint64
}

// newPublishedSite interns every page of site into the store. The
// caller owns one reference per page, returned via release.
func newPublishedSite(store *artifact.Store, site *htmlgen.Site) *publishedSite {
	p := &publishedSite{
		pages: make(map[string]*artifact.Artifact, len(site.Pages)),
		order: site.Order,
		fp:    site.Fingerprint(),
	}
	for name, content := range site.Pages {
		a := store.Intern(contentType(name), content)
		p.pages[name] = a
		p.size += a.Size()
	}
	return p
}

// page returns the artifact for one page name, or nil.
func (p *publishedSite) page(name string) *artifact.Artifact { return p.pages[name] }

// release returns every page's interning reference (cache eviction,
// purge). In-flight responses holding the artifacts keep serving —
// release only ends interning for future publications.
func (p *publishedSite) release() {
	for _, a := range p.pages {
		a.Release()
	}
}
