package server

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"goldweb/internal/core"
	"goldweb/internal/htmlgen"
)

// countingPublish wraps the real pipeline and counts invocations.
func countingPublish(n *atomic.Int64) PublishFunc {
	return func(ctx context.Context, m *core.Model, opts htmlgen.Options) (*htmlgen.Site, error) {
		n.Add(1)
		return htmlgen.Publish(m, opts)
	}
}

func TestUnknownFocusIs404AndNeverCached(t *testing.T) {
	var calls atomic.Int64
	srv := New(core.SampleSales(), WithPublishFunc(countingPublish(&calls)))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i, path := range []string{"/single?focus=garbage", "/site/index.html?focus=zzz", "/single?focus=../../etc"} {
		code, body, _ := get(t, ts, path)
		if code != http.StatusNotFound {
			t.Errorf("request %d: status %d, want 404 (%s)", i, code, body)
		}
	}
	if got := calls.Load(); got != 0 {
		t.Errorf("publish ran %d times for garbage focus, want 0", got)
	}
	if got := srv.cache.len(); got != 0 {
		t.Errorf("cache holds %d entries after garbage focus, want 0", got)
	}

	// A real fact id still works.
	if code, _, _ := get(t, ts, "/single?focus=f1"); code != http.StatusOK {
		t.Errorf("valid focus rejected: %d", code)
	}
}

func TestSingleflightColdCacheSharesOnePublish(t *testing.T) {
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	var calls atomic.Int64
	srv := New(core.SampleSales(), WithPublishFunc(
		func(ctx context.Context, m *core.Model, opts htmlgen.Options) (*htmlgen.Site, error) {
			calls.Add(1)
			entered <- struct{}{}
			<-release
			return htmlgen.Publish(m, opts)
		}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	codes := make(chan int, 2)
	fetch := func() {
		resp, err := ts.Client().Get(ts.URL + "/single")
		if err != nil {
			t.Error(err)
			codes <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes <- resp.StatusCode
	}
	go fetch()
	<-entered  // leader is inside publish
	go fetch() // follower joins the in-flight call
	time.Sleep(50 * time.Millisecond)
	close(release)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("request %d: status %d", i, code)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("publish ran %d times for two concurrent cold requests, want 1", got)
	}
}

func TestPanickingPublishReturns500ThenRecovers(t *testing.T) {
	var calls atomic.Int64
	srv := New(core.SampleSales(), WithPublishFunc(
		func(ctx context.Context, m *core.Model, opts htmlgen.Options) (*htmlgen.Site, error) {
			if calls.Add(1) == 1 {
				panic("injected transformation fault")
			}
			return htmlgen.Publish(m, opts)
		}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body, _ := get(t, ts, "/single")
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking publish: status %d, want 500 (%s)", code, body)
	}
	if !strings.Contains(body, "injected transformation fault") {
		t.Errorf("500 body does not name the fault: %q", body)
	}
	// The rest of the site keeps serving, and the same page succeeds on retry.
	if code, _, _ := get(t, ts, "/schema.xsd"); code != http.StatusOK {
		t.Errorf("schema after panic: %d", code)
	}
	if code, _, _ := get(t, ts, "/single"); code != http.StatusOK {
		t.Errorf("retry after panic: %d", code)
	}
}

func TestHangingPublishTimesOutWhileSiteKeepsServing(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	srv := New(core.SampleSales(),
		WithRequestTimeout(100*time.Millisecond),
		WithPublishFunc(func(ctx context.Context, m *core.Model, opts htmlgen.Options) (*htmlgen.Site, error) {
			if opts.Mode == htmlgen.SinglePage {
				<-hang
			}
			return htmlgen.Publish(m, opts)
		}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _, _ := get(t, ts, "/single")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("hanging publish: status %d, want 504", code)
	}
	// Other pages (different cache keys) are unaffected.
	if code, _, _ := get(t, ts, "/site/index.html"); code != http.StatusOK {
		t.Errorf("multi-page during hang: %d", code)
	}
	if code, _, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("healthz during hang: %d", code)
	}
}

func TestLimiterShedsWith503AndRetryAfter(t *testing.T) {
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	srv := New(core.SampleSales(),
		WithMaxInflight(2),
		WithRequestTimeout(0),
		WithPublishFunc(func(ctx context.Context, m *core.Model, opts htmlgen.Options) (*htmlgen.Site, error) {
			entered <- struct{}{}
			<-release
			return htmlgen.Publish(m, opts)
		}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for _, path := range []string{"/single", "/site/index.html"} {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			resp, err := ts.Client().Get(ts.URL + p)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}
	<-entered
	<-entered // both slots are now held inside publish

	resp, err := ts.Client().Get(ts.URL + "/schema.xsd")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated: status %d, want 503 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 is missing Retry-After")
	}
	// Health endpoints bypass the limiter.
	if code, _, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("healthz while saturated: %d", code)
	}

	close(release)
	wg.Wait()
	if code, _, _ := get(t, ts, "/schema.xsd"); code != http.StatusOK {
		t.Errorf("after release: %d", code)
	}
}

func TestCacheIsBoundedLRU(t *testing.T) {
	var calls atomic.Int64
	srv := New(core.SampleSales(),
		WithCacheSize(1),
		WithPublishFunc(countingPublish(&calls)))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get(t, ts, "/single")          // miss → publish #1
	get(t, ts, "/single")          // hit
	get(t, ts, "/site/index.html") // miss → publish #2, evicts /single
	get(t, ts, "/single")          // miss again → publish #3
	if got := calls.Load(); got != 3 {
		t.Errorf("publish count %d, want 3 (size-1 LRU must evict)", got)
	}
	if got := srv.cache.len(); got != 1 {
		t.Errorf("cache length %d, want 1", got)
	}
}

func TestSinglePageWithoutIndexIs500(t *testing.T) {
	srv := New(core.SampleSales(), WithPublishFunc(
		func(ctx context.Context, m *core.Model, opts htmlgen.Options) (*htmlgen.Site, error) {
			return &htmlgen.Site{Pages: map[string][]byte{}}, nil
		}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, body, _ := get(t, ts, "/single")
	if code != http.StatusInternalServerError {
		t.Errorf("index-less site: status %d body %q, want 500", code, body)
	}
}

func TestMethodFiltering(t *testing.T) {
	srv := New(core.SampleSales())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/single", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
		t.Errorf("Allow header %q", allow)
	}

	req, _ := http.NewRequest(http.MethodHead, ts.URL+"/schema.xsd", nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("HEAD: status %d", resp.StatusCode)
	}
}

func TestHealthEndpoints(t *testing.T) {
	srv := New(core.SampleSales())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, body, _ := get(t, ts, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz: %d %q", code, body)
	}
	code, body, _ = get(t, ts, "/readyz")
	if code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Errorf("readyz: %d %q", code, body)
	}
}

func TestContentTypesForNonHTMLAssets(t *testing.T) {
	for page, want := range map[string]string{
		"model.xml":  "text/xml",
		"sheet.xsl":  "text/xml",
		"style.css":  "text/css",
		"index.html": "text/html",
		"blob.bin":   "application/octet-stream",
	} {
		if got := contentType(page); !strings.Contains(got, want) {
			t.Errorf("contentType(%q) = %q, want %q", page, got, want)
		}
	}
}

// TestConcurrentRequestsDuringModelSwaps is the -race hammer: every
// endpoint under parallel load while SetModel flips the published model.
func TestConcurrentRequestsDuringModelSwaps(t *testing.T) {
	srv := New(core.SampleSales())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	paths := []string{
		"/site/index.html", "/single", "/model.xml", "/pretty",
		"/schema.xsd", "/validate", "/cwm.xmi", "/client/model.xml",
		"/healthz",
	}
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		models := []*core.Model{core.SampleHospital(), core.SampleSales()}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				srv.SetModel(models[i%2])
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				p := paths[(w+i)%len(paths)]
				resp, err := ts.Client().Get(ts.URL + p)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- errStatus(p, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	swapper.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type statusErr struct {
	path string
	code int
}

func (e statusErr) Error() string { return e.path + ": status " + http.StatusText(e.code) }

func errStatus(path string, code int) error { return statusErr{path, code} }

func TestGracefulShutdown(t *testing.T) {
	srv := New(core.SampleSales())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.ServeListener(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get(url + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("shutdown returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down within 5s")
	}
}

// discardResponse is a ResponseWriter that throws everything away; the
// header map is allocated once so warm-hit allocation counts measure the
// server, not the test harness.
type discardResponse struct{ h http.Header }

func (d *discardResponse) Header() http.Header         { return d.h }
func (d *discardResponse) WriteHeader(int)             {}
func (d *discardResponse) Write(p []byte) (int, error) { return len(p), nil }

// TestWarmHitAllocations pins the per-request allocation budget of the
// hot cached paths. The cache lookup itself must be allocation-free, and
// a full handler pass over a warm page or a precomputed XML view must
// stay within the small fixed cost of the middleware stack — a budget
// that re-serializing the document (or copying the page into a fresh
// response buffer) would blow immediately.
func TestWarmHitAllocations(t *testing.T) {
	srv := New(core.SampleSales())
	// Warm every cache and the response-buffer pool.
	if _, err := srv.site(htmlgen.MultiPage, ""); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := srv.site(htmlgen.MultiPage, ""); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("warm site() lookup: %.1f allocs/op, want 0", allocs)
	}

	h := srv.Handler()
	for _, path := range []string{"/site/index.html", "/model.xml", "/cwm.xmi"} {
		req, err := http.NewRequest(http.MethodGet, path, nil)
		if err != nil {
			t.Fatal(err)
		}
		w := &discardResponse{h: make(http.Header)}
		h.ServeHTTP(w, req) // warm-up: grow the pooled buffer
		allocs := testing.AllocsPerRun(200, func() {
			clear(w.h)
			h.ServeHTTP(w, req)
		})
		// The timeout middleware's context/goroutine plumbing costs a
		// handful of allocations per request; a page copy or document
		// re-serialization costs hundreds.
		if allocs > 40 {
			t.Errorf("warm GET %s: %.1f allocs/op, want <= 40", path, allocs)
		}
	}
}
