package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"goldweb/internal/artifact"
	"goldweb/internal/htmlgen"
)

// fakeSite builds a publishedSite of exactly n pages × pageBytes each,
// with content unique to (tag) so interning does not collapse sites.
func fakeSite(t *testing.T, store *artifact.Store, tag string, n, pageBytes int) *publishedSite {
	t.Helper()
	site := &htmlgen.Site{Pages: map[string][]byte{}}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("p%d.html", i)
		content := bytes.Repeat([]byte("x"), pageBytes)
		copy(content, tag+name)
		site.Pages[name] = content
		site.Order = append(site.Order, name)
	}
	return newPublishedSite(store, site)
}

func TestCacheByteBudgetAccounting(t *testing.T) {
	store := artifact.NewStore()
	// Budget of 3 KiB with 1 KiB sites: at most 3 live entries.
	c := newSiteCache(100, 3072)
	for i := 0; i < 6; i++ {
		s := fakeSite(t, store, fmt.Sprintf("s%d", i), 1, 1024)
		c.add(siteKey{gen: uint64(i)}, s)
	}
	if got := c.len(); got != 3 {
		t.Errorf("entries %d, want 3 under a 3 KiB budget of 1 KiB sites", got)
	}
	if got := c.usedBytes(); got != 3072 {
		t.Errorf("accounted bytes %d, want 3072", got)
	}
	// Evicted sites released their interning references: only the live
	// entries' pages remain in the store.
	if got := store.Len(); got != 3 {
		t.Errorf("store holds %d artifacts, want 3 after eviction releases", got)
	}

	// The newest entry survives even when it alone blows the budget.
	big := fakeSite(t, store, "big", 1, 8192)
	c.add(siteKey{gen: 100}, big)
	if got := c.len(); got != 1 {
		t.Errorf("entries %d, want only the oversized newest entry", got)
	}
	if got := c.usedBytes(); got != 8192 {
		t.Errorf("accounted bytes %d, want 8192", got)
	}

	// purge releases everything.
	c.purge()
	if got, used := c.len(), c.usedBytes(); got != 0 || used != 0 {
		t.Errorf("after purge: %d entries, %d bytes", got, used)
	}
	if got := store.Len(); got != 0 {
		t.Errorf("store holds %d artifacts after purge, want 0", got)
	}
}

func TestCacheReplaceSameKeyAccountsDelta(t *testing.T) {
	store := artifact.NewStore()
	c := newSiteCache(10, 0) // entries-only bound; byte budget disabled
	key := siteKey{gen: 1}
	c.add(key, fakeSite(t, store, "a", 2, 512))
	if got := c.usedBytes(); got != 1024 {
		t.Fatalf("bytes %d, want 1024", got)
	}
	c.add(key, fakeSite(t, store, "b", 1, 256))
	if got := c.usedBytes(); got != 256 {
		t.Errorf("bytes %d after replacement, want 256", got)
	}
	if got := c.len(); got != 1 {
		t.Errorf("entries %d, want 1", got)
	}
	if got := store.Len(); got != 1 {
		t.Errorf("store %d artifacts, want 1 (replaced site released)", got)
	}
}

// TestCacheConcurrentChurn hammers get/add/purge from many goroutines
// (run with -race): the invariant checked at the end is that the byte
// accounting equals the sum of the surviving entries' sizes and every
// evicted site released its store references.
func TestCacheConcurrentChurn(t *testing.T) {
	store := artifact.NewStore()
	c := newSiteCache(8, 16*1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				key := siteKey{gen: uint64(i % 16), focus: fmt.Sprintf("g%d", g%4)}
				if i%7 == 0 {
					c.purge()
					continue
				}
				if _, ok := c.get(key); !ok {
					c.add(key, fakeSite(t, store, fmt.Sprintf("%d-%d", g%4, i%16), 2, 512))
				}
			}
		}(g)
	}
	wg.Wait()

	// Re-derive the accounting from the surviving entries.
	c.mu.Lock()
	var want int64
	entries := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		want += el.Value.(*cacheEntry).site.size
		entries++
	}
	got := c.bytes
	c.mu.Unlock()
	if got != want {
		t.Errorf("accounted %d bytes, surviving entries sum to %d", got, want)
	}
	if entries > 8 {
		t.Errorf("%d entries survived an 8-entry cap", entries)
	}
	if got > 16*1024 && entries > 1 {
		t.Errorf("byte budget exceeded with %d entries (%d bytes)", entries, got)
	}

	// After a final purge every interning reference must be home.
	c.purge()
	if n := store.Len(); n != 0 {
		t.Errorf("store retains %d artifacts after purge (leaked references)", n)
	}
}
