// Package server implements the web architecture of the paper's §6: the
// XSLT stylesheet is applied to the XML document *in the server* and the
// resulting HTML is returned to the client browser — plus endpoints for
// the raw and pretty-printed XML, the canonical schema, and an on-demand
// validation report.
//
// Presentations are cached per (mode, focus) pair and regenerated when
// the model changes.
package server

import (
	"fmt"
	"net/http"
	"path"
	"sort"
	"strings"
	"sync"

	"goldweb/internal/core"
	"goldweb/internal/cwm"
	"goldweb/internal/htmlgen"
	"goldweb/internal/xmldom"
)

// Server publishes one conceptual model over HTTP.
type Server struct {
	mu    sync.Mutex
	model *core.Model
	doc   *xmldom.Node
	cache map[string]*htmlgen.Site
}

// New creates a server for the model.
func New(m *core.Model) *Server {
	s := &Server{}
	s.SetModel(m)
	return s
}

// SetModel swaps the published model and invalidates cached
// presentations.
func (s *Server) SetModel(m *core.Model) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.model = m
	s.doc = m.ToXML()
	s.cache = map[string]*htmlgen.Site{}
}

// site returns the cached (or freshly generated) presentation.
func (s *Server) site(mode htmlgen.Mode, focus string) (*htmlgen.Site, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := fmt.Sprintf("%d|%s", mode, focus)
	if site, ok := s.cache[key]; ok {
		return site, nil
	}
	site, err := htmlgen.Publish(s.model, htmlgen.Options{Mode: mode, Focus: focus})
	if err != nil {
		return nil, err
	}
	s.cache[key] = site
	return site, nil
}

// Handler returns the HTTP handler:
//
//	GET /                  redirect to /site/index.html
//	GET /site/<page>       multi-page presentation (?focus=<factid>)
//	GET /single            single-page presentation (?focus=<factid>)
//	GET /model.xml         the XML document (Fig. 3)
//	GET /pretty            pretty-printed XML, a browser's raw view (Fig. 4)
//	GET /schema.xsd        the canonical XML Schema
//	GET /validate          plain-text validation report
//	GET /client/model.xml  XML + xml-stylesheet PI for client-side XSLT (§6 future work)
//	GET /client/single.xsl the stylesheet the browser applies
//	GET /cwm.xmi           CWM OLAP interchange document (§6 future work)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, "/site/index.html", http.StatusFound)
	})
	mux.HandleFunc("/site/", func(w http.ResponseWriter, r *http.Request) {
		page := strings.TrimPrefix(r.URL.Path, "/site/")
		if page == "" {
			page = htmlgen.IndexName
		}
		if page != path.Clean(page) || strings.Contains(page, "/") {
			http.NotFound(w, r)
			return
		}
		site, err := s.site(htmlgen.MultiPage, r.URL.Query().Get("focus"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		content := site.Page(page)
		if content == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", contentType(page))
		w.Write(content)
	})
	mux.HandleFunc("/single", func(w http.ResponseWriter, r *http.Request) {
		site, err := s.site(htmlgen.SinglePage, r.URL.Query().Get("focus"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(site.Page(htmlgen.IndexName))
	})
	mux.HandleFunc("/style.css", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/css; charset=utf-8")
		fmt.Fprint(w, core.StyleCSS)
	})
	mux.HandleFunc("/model.xml", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		out := xmldom.SerializeToString(s.doc, xmldom.WriteOptions{})
		s.mu.Unlock()
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		fmt.Fprint(w, out)
	})
	mux.HandleFunc("/pretty", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		out := xmldom.Pretty(s.doc)
		s.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, out)
	})
	// The paper's §6 future work: "when the browsers completely support
	// XML and XSLT, the transformation will be able to be performed in the
	// browser ... removing some of the processing load from the server."
	// /client/model.xml carries an xml-stylesheet processing instruction,
	// and the stylesheet itself is served next to it, so an XSLT-capable
	// browser renders the model client-side.
	mux.HandleFunc("/client/model.xml", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		doc := s.doc.Clone()
		s.mu.Unlock()
		pi := &xmldom.Node{Type: xmldom.PINode, Name: "xml-stylesheet",
			Data: `type="text/xsl" href="/client/single.xsl"`}
		doc.InsertBefore(pi, doc.DocumentElement())
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		fmt.Fprint(w, xmldom.SerializeToString(doc, xmldom.WriteOptions{}))
	})
	mux.HandleFunc("/client/single.xsl", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		fmt.Fprint(w, core.SingleXSL)
	})
	mux.HandleFunc("/cwm.xmi", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		model := s.model
		s.mu.Unlock()
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		fmt.Fprint(w, cwm.ExportString(model))
	})
	mux.HandleFunc("/schema.xsd", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		fmt.Fprint(w, core.SchemaXSD)
	})
	mux.HandleFunc("/validate", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		doc := s.doc.Clone()
		model := s.model
		s.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		schemaErrs := core.ValidateDocument(doc)
		semErrs := model.Validate()
		if len(schemaErrs) == 0 && len(semErrs) == 0 {
			fmt.Fprintf(w, "VALID: %s conforms to the XML Schema and the metamodel constraints\n", model.Name)
			return
		}
		var lines []string
		for _, e := range schemaErrs {
			lines = append(lines, "schema: "+e.Error())
		}
		for _, e := range semErrs {
			lines = append(lines, "model: "+e.Error())
		}
		sort.Strings(lines)
		fmt.Fprintf(w, "INVALID: %d problems\n", len(lines))
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	})
	return mux
}

func contentType(page string) string {
	switch {
	case strings.HasSuffix(page, ".css"):
		return "text/css; charset=utf-8"
	case strings.HasSuffix(page, ".html"):
		return "text/html; charset=utf-8"
	default:
		return "application/octet-stream"
	}
}

// ListenAndServe runs the server on addr (blocking).
func (s *Server) ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, s.Handler())
}
