// Package server implements the web architecture of the paper's §6: the
// XSLT stylesheet is applied to the XML document *in the server* and the
// resulting HTML is returned to the client browser — plus endpoints for
// the raw and pretty-printed XML, the canonical schema, and an on-demand
// validation report.
//
// The serving path is hardened for production traffic: the published
// model lives in an immutable snapshot behind an RWMutex, presentations
// are generated through a singleflight group (concurrent cold-cache
// requests for the same page share one transformation) into a bounded
// LRU cache, and every request passes a middleware stack providing panic
// recovery, a per-request timeout, load shedding with 503 + Retry-After,
// and method filtering. /healthz and /readyz expose liveness and
// readiness, and Serve runs a full http.Server lifecycle with IO
// timeouts and graceful shutdown.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"goldweb/internal/core"
	"goldweb/internal/cwm"
	"goldweb/internal/htmlgen"
	"goldweb/internal/xmldom"
)

// snapshot is one immutable published state. Handlers grab the current
// snapshot under a read lock and then work without any lock at all; a
// concurrent SetModel builds a fresh snapshot and swaps the pointer.
// Both documents are frozen (xmldom.Freeze), so every handler and every
// concurrent publication reads them without cloning or re-indexing.
type snapshot struct {
	model *core.Model
	// doc is the canonical document as the model renders it — served by
	// /model.xml and /pretty, which must not show schema defaults.
	doc *xmldom.Node
	// pubDoc is the publication source: validated once at swap time with
	// schema defaults applied. pubErr records a validation failure; the
	// publication path reports it instead of transforming.
	pubDoc *xmldom.Node
	pubErr error
	// focuses is the set of fact class ids that are valid ?focus= values;
	// anything else is a 404 before it can touch the cache.
	focuses map[string]bool
	// Pre-rendered responses for the XML views, serialized once at swap
	// time so request hits write cached bytes instead of re-serializing
	// the document on every GET.
	modelXML  []byte
	prettyXML []byte
	clientXML []byte
	cwmXMI    []byte
}

// PublishFunc generates a presentation for a model. When unset the
// server publishes straight from the snapshot's frozen, pre-validated
// document; tests inject faulty ones to prove that a panicking or
// hanging transformation is contained to its own request.
type PublishFunc func(m *core.Model, opts htmlgen.Options) (*htmlgen.Site, error)

// Server publishes one conceptual model over HTTP.
type Server struct {
	mu   sync.RWMutex
	snap *snapshot
	gen  uint64 // snapshot generation, part of every cache key

	cache  *siteCache
	flight *flightGroup
	ready  atomic.Bool

	publish        PublishFunc
	requestTimeout time.Duration
	maxInflight    int
	shutdownGrace  time.Duration
}

// Defaults for the tunable knobs (overridable with Options).
const (
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxInflight    = 64
	DefaultCacheSize      = 64
	DefaultShutdownGrace  = 10 * time.Second
)

// Option configures a Server.
type Option func(*Server)

// WithRequestTimeout bounds one request's wall-clock time (0 disables).
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.requestTimeout = d }
}

// WithMaxInflight bounds concurrently served requests; excess load is
// shed with 503 + Retry-After (0 disables the limiter).
func WithMaxInflight(n int) Option {
	return func(s *Server) { s.maxInflight = n }
}

// WithCacheSize bounds the number of cached presentations.
func WithCacheSize(n int) Option {
	return func(s *Server) { s.cache = newSiteCache(n) }
}

// WithPublishFunc replaces the publication pipeline — the fault-injection
// hook used by resilience tests.
func WithPublishFunc(fn PublishFunc) Option {
	return func(s *Server) { s.publish = fn }
}

// WithShutdownGrace bounds how long Serve waits for in-flight requests
// after its context is canceled.
func WithShutdownGrace(d time.Duration) Option {
	return func(s *Server) { s.shutdownGrace = d }
}

// New creates a server for the model.
func New(m *core.Model, opts ...Option) *Server {
	s := &Server{
		cache:          newSiteCache(DefaultCacheSize),
		flight:         newFlightGroup(),
		requestTimeout: DefaultRequestTimeout,
		maxInflight:    DefaultMaxInflight,
		shutdownGrace:  DefaultShutdownGrace,
	}
	for _, opt := range opts {
		opt(s)
	}
	s.SetModel(m)
	return s
}

// SetModel swaps the published model and invalidates cached
// presentations. While the new snapshot is being prepared the server
// reports not-ready on /readyz; requests already holding the old
// snapshot keep being served from it.
func (s *Server) SetModel(m *core.Model) {
	s.ready.Store(false)
	defer s.ready.Store(true)
	snap := &snapshot{model: m, doc: m.ToXML(), focuses: htmlgen.FocusTargets(m)}
	xmldom.Freeze(snap.doc)
	// Validate once per swap (applying schema defaults) so the request
	// path never re-validates; the defaults-applied document is frozen and
	// shared by every concurrent transformation.
	snap.pubDoc = m.ToXML()
	if errs := core.ValidateDocument(snap.pubDoc); len(errs) > 0 {
		snap.pubErr = fmt.Errorf("document is invalid: %v (%d problems)", errs[0], len(errs))
	}
	xmldom.Freeze(snap.pubDoc)
	snap.modelXML = []byte(xmldom.SerializeToString(snap.doc, xmldom.WriteOptions{}))
	snap.prettyXML = []byte(xmldom.Pretty(snap.doc))
	snap.clientXML = clientModelXML(snap.doc)
	snap.cwmXMI = []byte(cwm.ExportString(m))
	s.mu.Lock()
	s.snap = snap
	s.gen++
	s.mu.Unlock()
	s.cache.purge()
}

// clientModelXML serializes the document with the xml-stylesheet
// processing instruction that points an XSLT-capable browser at
// /client/single.xsl (the paper's §6 client-side future work).
func clientModelXML(frozen *xmldom.Node) []byte {
	doc := frozen.Editable()
	pi := &xmldom.Node{Type: xmldom.PINode, Name: "xml-stylesheet",
		Data: `type="text/xsl" href="/client/single.xsl"`}
	doc.InsertBefore(pi, doc.DocumentElement())
	return []byte(xmldom.SerializeToString(doc, xmldom.WriteOptions{}))
}

// snapshotAndGen returns the current published state.
func (s *Server) snapshotAndGen() (*snapshot, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap, s.gen
}

// errUnknownFocus marks a ?focus= naming no fact class of the model.
var errUnknownFocus = errors.New("unknown focus")

// site returns the cached (or freshly generated) presentation. The focus
// is validated against the snapshot's fact ids *before* cache lookup, so
// attacker-chosen values can never become cache keys; concurrent misses
// for the same key share one publication via the singleflight group.
func (s *Server) site(mode htmlgen.Mode, focus string) (*htmlgen.Site, error) {
	snap, gen := s.snapshotAndGen()
	if focus != "" && !snap.focuses[focus] {
		return nil, fmt.Errorf("%w %q: no such fact class", errUnknownFocus, focus)
	}
	key := siteKey{gen: gen, mode: mode, focus: focus}
	if site, ok := s.cache.get(key); ok {
		return site, nil
	}
	return s.flight.Do(key, func() (*htmlgen.Site, error) {
		var site *htmlgen.Site
		var err error
		if s.publish != nil {
			site, err = s.publish(snap.model, htmlgen.Options{Mode: mode, Focus: focus})
		} else if snap.pubErr != nil {
			err = snap.pubErr
		} else {
			// Default pipeline: transform the snapshot's frozen,
			// pre-validated document directly — no clone, no re-validation,
			// safe to run concurrently for different cache keys.
			site, err = htmlgen.PublishDocument(snap.pubDoc,
				htmlgen.Options{Mode: mode, Focus: focus, SkipValidation: true})
		}
		if err != nil {
			return nil, err
		}
		s.cache.add(key, site)
		return site, nil
	})
}

// siteError maps a publication error onto the right status code.
func siteError(w http.ResponseWriter, err error) {
	if errors.Is(err, errUnknownFocus) {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// Handler returns the full HTTP handler, middleware included:
//
//	GET /                  redirect to /site/index.html
//	GET /site/<page>       multi-page presentation (?focus=<factid>)
//	GET /single            single-page presentation (?focus=<factid>)
//	GET /model.xml         the XML document (Fig. 3)
//	GET /pretty            pretty-printed XML, a browser's raw view (Fig. 4)
//	GET /schema.xsd        the canonical XML Schema
//	GET /validate          plain-text validation report
//	GET /client/model.xml  XML + xml-stylesheet PI for client-side XSLT (§6 future work)
//	GET /client/single.xsl the stylesheet the browser applies
//	GET /cwm.xmi           CWM OLAP interchange document (§6 future work)
//	GET /healthz           liveness (always 200 while the process serves)
//	GET /readyz            readiness (503 while SetModel swaps the model)
//
// Health endpoints sit outside the limiter and timeout so orchestrators
// can still probe a saturated server.
func (s *Server) Handler() http.Handler {
	app := withLimiter(s.maxInflight, withTimeout(s.requestTimeout, s.appMux()))
	root := http.NewServeMux()
	root.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	root.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "model swap in progress", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ready")
	})
	root.Handle("/", app)
	return withRecovery(withMethods(root))
}

// appMux builds the application routes (no middleware).
func (s *Server) appMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, "/site/index.html", http.StatusFound)
	})
	mux.HandleFunc("/site/", func(w http.ResponseWriter, r *http.Request) {
		page := strings.TrimPrefix(r.URL.Path, "/site/")
		if page == "" {
			page = htmlgen.IndexName
		}
		if page != path.Clean(page) || strings.Contains(page, "/") {
			http.NotFound(w, r)
			return
		}
		site, err := s.site(htmlgen.MultiPage, r.URL.Query().Get("focus"))
		if err != nil {
			siteError(w, err)
			return
		}
		content := site.Page(page)
		if content == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", contentType(page))
		w.Write(content)
	})
	mux.HandleFunc("/single", func(w http.ResponseWriter, r *http.Request) {
		site, err := s.site(htmlgen.SinglePage, r.URL.Query().Get("focus"))
		if err != nil {
			siteError(w, err)
			return
		}
		content := site.Page(htmlgen.IndexName)
		if content == nil {
			http.Error(w, "presentation has no index page", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(content)
	})
	mux.HandleFunc("/style.css", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/css; charset=utf-8")
		io.WriteString(w, core.StyleCSS)
	})
	mux.HandleFunc("/model.xml", func(w http.ResponseWriter, r *http.Request) {
		snap, _ := s.snapshotAndGen()
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		w.Write(snap.modelXML)
	})
	mux.HandleFunc("/pretty", func(w http.ResponseWriter, r *http.Request) {
		snap, _ := s.snapshotAndGen()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(snap.prettyXML)
	})
	// The paper's §6 future work: "when the browsers completely support
	// XML and XSLT, the transformation will be able to be performed in the
	// browser ... removing some of the processing load from the server."
	// /client/model.xml carries an xml-stylesheet processing instruction,
	// and the stylesheet itself is served next to it, so an XSLT-capable
	// browser renders the model client-side.
	mux.HandleFunc("/client/model.xml", func(w http.ResponseWriter, r *http.Request) {
		snap, _ := s.snapshotAndGen()
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		w.Write(snap.clientXML)
	})
	mux.HandleFunc("/client/single.xsl", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		io.WriteString(w, core.SingleXSL)
	})
	mux.HandleFunc("/cwm.xmi", func(w http.ResponseWriter, r *http.Request) {
		snap, _ := s.snapshotAndGen()
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		w.Write(snap.cwmXMI)
	})
	mux.HandleFunc("/schema.xsd", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		io.WriteString(w, core.SchemaXSD)
	})
	mux.HandleFunc("/validate", func(w http.ResponseWriter, r *http.Request) {
		snap, _ := s.snapshotAndGen()
		// Validation applies schema defaults to the document, so it works
		// on a private editable copy of the frozen snapshot.
		doc := snap.doc.Editable()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		schemaErrs := core.ValidateDocument(doc)
		semErrs := snap.model.Validate()
		if len(schemaErrs) == 0 && len(semErrs) == 0 {
			fmt.Fprintf(w, "VALID: %s conforms to the XML Schema and the metamodel constraints\n", snap.model.Name)
			return
		}
		var lines []string
		for _, e := range schemaErrs {
			lines = append(lines, "schema: "+e.Error())
		}
		for _, e := range semErrs {
			lines = append(lines, "model: "+e.Error())
		}
		sort.Strings(lines)
		fmt.Fprintf(w, "INVALID: %d problems\n", len(lines))
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	})
	return mux
}

func contentType(page string) string {
	switch {
	case strings.HasSuffix(page, ".css"):
		return "text/css; charset=utf-8"
	case strings.HasSuffix(page, ".html"):
		return "text/html; charset=utf-8"
	case strings.HasSuffix(page, ".xml"), strings.HasSuffix(page, ".xsl"):
		return "text/xml; charset=utf-8"
	default:
		return "application/octet-stream"
	}
}

// Serve runs a production http.Server on addr: IO timeouts against slow
// clients, and graceful shutdown when ctx is canceled (in-flight requests
// get the configured grace period to finish). It returns nil on a clean
// shutdown.
func (s *Server) Serve(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.ServeListener(ctx, ln)
}

// ServeListener is Serve on an existing listener (tests use it to bind
// port 0).
func (s *Server) ServeListener(ctx context.Context, ln net.Listener) error {
	writeTimeout := 2 * s.requestTimeout
	if writeTimeout <= 0 {
		writeTimeout = 2 * DefaultRequestTimeout
	}
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), s.shutdownGrace)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			hs.Close()
			return err
		}
		<-errc // always http.ErrServerClosed after Shutdown
		return nil
	}
}

// ListenAndServe runs the server on addr (blocking, no graceful
// shutdown); kept for compatibility with simple callers.
func (s *Server) ListenAndServe(addr string) error {
	return s.Serve(context.Background(), addr)
}
