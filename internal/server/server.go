// Package server implements the web architecture of the paper's §6: the
// XSLT stylesheet is applied to the XML document *in the server* and the
// resulting HTML is returned to the client browser — plus endpoints for
// the raw and pretty-printed XML, the canonical schema, and an on-demand
// validation report.
//
// The serving path is hardened for production traffic: the published
// model lives in an immutable snapshot behind an RWMutex, presentations
// are generated through a singleflight group (concurrent cold-cache
// requests for the same page share one transformation) into a bounded
// LRU cache, and every request passes a middleware stack providing panic
// recovery, a per-request timeout, load shedding with 503 + Retry-After,
// and method filtering. /healthz and /readyz expose liveness and
// readiness, and Serve runs a full http.Server lifecycle with IO
// timeouts and graceful shutdown.
//
// For hot-swap catalogs (internal/catalog) the server additionally
// supports staged swaps — Stage builds and shadow-publishes a new
// snapshot without touching the live pointer, Commit installs it with
// an atomic generation bump — plus stale marking (Warning and
// X-Goldweb-Stale headers while a republish is failing) and a
// generation header on every snapshot-derived response so clients and
// soak harnesses can assert that generations never regress.
//
// Content delivery is content-addressed (internal/artifact): every
// published page and pre-serialized XML view is an interned artifact
// with a hash-keyed strong ETag, answered conditionally (If-None-Match
// → 304) with lazily materialized precompressed gzip variants selected
// by Accept-Encoding. Byte-identical pages are shared across
// generations and across models, so a hot swap that does not change a
// page's bytes keeps its ETag — and the clients' 304s — alive. The
// presentation cache is accounted in bytes (WithCacheBytes), not
// entries.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"goldweb/internal/artifact"
	"goldweb/internal/core"
	"goldweb/internal/cwm"
	"goldweb/internal/htmlgen"
	"goldweb/internal/xmldom"
)

// GenerationHeader carries the snapshot generation a response was
// served from. Within one model it is strictly monotonic: a client
// that saw generation N is never served N-1 afterwards.
const GenerationHeader = "X-Goldweb-Generation"

// StaleHeader marks a response served from a last-good snapshot while
// the model's republish pipeline is failing.
const StaleHeader = "X-Goldweb-Stale"

// snapshot is one immutable published state. Handlers grab the current
// snapshot under a read lock and then work without any lock at all; a
// concurrent swap builds a fresh snapshot and swaps the pointer.
// Both documents are frozen (xmldom.Freeze), so every handler and every
// concurrent publication reads them without cloning or re-indexing.
type snapshot struct {
	model *core.Model
	// gen is the generation this snapshot was installed as; genHeader is
	// its pre-rendered header value. Keeping the generation inside the
	// snapshot means a handler's body and generation header always come
	// from the same published state, however the swap races the request.
	gen       uint64
	genHeader string
	// genVal is the pre-rendered single-value header slice for the
	// generation header, assigned (not Set) on every response so the
	// warm path does not allocate for it.
	genVal []string
	// doc is the canonical document as the model renders it — served by
	// /model.xml and /pretty, which must not show schema defaults.
	doc *xmldom.Node
	// pubDoc is the publication source: validated once at swap time with
	// schema defaults applied. pubErr records a validation failure; the
	// publication path reports it instead of transforming.
	pubDoc *xmldom.Node
	pubErr error
	// focuses is the set of fact class ids that are valid ?focus= values;
	// anything else is a 404 before it can touch the cache.
	focuses map[string]bool
	// Pre-rendered responses for the XML views, serialized once at swap
	// time and interned as content-addressed artifacts: request hits
	// serve frozen bytes with hash-keyed ETags (and precompressed
	// variants) instead of re-serializing the document on every GET.
	modelXML  *artifact.Artifact
	prettyXML *artifact.Artifact
	clientXML *artifact.Artifact
	cwmXMI    *artifact.Artifact
}

// release returns the snapshot's interning references when it is
// replaced by a swap; responses in flight keep their artifacts.
func (snap *snapshot) release() {
	snap.modelXML.Release()
	snap.prettyXML.Release()
	snap.clientXML.Release()
	snap.cwmXMI.Release()
}

// PublishFunc generates a presentation for a model. When unset the
// server publishes straight from the snapshot's frozen, pre-validated
// document. The context is canceled when the server shuts down (and
// carries the request-timeout deadline), so a hung or slow publication
// never outlives the process teardown; fault-injection harnesses
// replace the function to prove exactly that.
type PublishFunc func(ctx context.Context, m *core.Model, opts htmlgen.Options) (*htmlgen.Site, error)

// staleInfo records why the server is serving last-good content.
type staleInfo struct{ reason string }

// Server publishes one conceptual model over HTTP.
type Server struct {
	mu   sync.RWMutex
	snap *snapshot
	gen  uint64 // snapshot generation, part of every cache key

	cache  *siteCache
	flight *flightGroup
	ready  atomic.Bool
	stale  atomic.Pointer[staleInfo]

	// baseCtx parents every publication; baseCancel fires at shutdown so
	// in-flight publications stop instead of leaking their goroutines,
	// and pubWG lets the shutdown path await them.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	pubWG      sync.WaitGroup

	publish        PublishFunc
	requestTimeout time.Duration
	maxInflight    int
	shutdownGrace  time.Duration

	// Edge-serving knobs: the artifact store pages intern into, the
	// presentation-cache bounds, and whether precompressed variants are
	// offered (identity is always available).
	store        *artifact.Store
	cacheEntries int
	cacheBytes   int64
	compress     bool
}

// Defaults for the tunable knobs (overridable with Options).
const (
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxInflight    = 64
	DefaultCacheSize      = 64
	DefaultCacheBytes     = 64 << 20 // 64 MiB of identity bytes per model
	DefaultShutdownGrace  = 10 * time.Second
)

// Option configures a Server.
type Option func(*Server)

// WithRequestTimeout bounds one request's wall-clock time (0 disables).
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.requestTimeout = d }
}

// WithMaxInflight bounds concurrently served requests; excess load is
// shed with 503 + Retry-After (0 disables the limiter).
func WithMaxInflight(n int) Option {
	return func(s *Server) { s.maxInflight = n }
}

// WithCacheSize bounds the number of cached presentations (the
// secondary cap; the primary accounting is WithCacheBytes).
func WithCacheSize(n int) Option {
	return func(s *Server) { s.cacheEntries = n }
}

// WithCacheBytes bounds the presentation cache by summed identity
// bytes — the unit that actually matters under memory pressure, since
// per-focus sites of a large model dwarf a small model's whole site.
// 0 disables the byte budget (the entry cap still applies).
func WithCacheBytes(n int64) Option {
	return func(s *Server) { s.cacheBytes = n }
}

// WithCompression enables or disables serving precompressed gzip
// variants negotiated via Accept-Encoding (enabled by default).
func WithCompression(enabled bool) Option {
	return func(s *Server) { s.compress = enabled }
}

// WithArtifactStore sets the content store pages intern into (default:
// the process-global artifact.Shared, so byte-identical content is
// shared across every model server in the process).
func WithArtifactStore(st *artifact.Store) Option {
	return func(s *Server) { s.store = st }
}

// WithPublishFunc replaces the publication pipeline — the fault-injection
// hook used by resilience tests.
func WithPublishFunc(fn PublishFunc) Option {
	return func(s *Server) { s.publish = fn }
}

// WithShutdownGrace bounds how long Serve waits for in-flight requests
// after its context is canceled.
func WithShutdownGrace(d time.Duration) Option {
	return func(s *Server) { s.shutdownGrace = d }
}

// New creates a server for the model.
func New(m *core.Model, opts ...Option) *Server {
	s := NewEmpty(opts...)
	s.SetModel(m)
	return s
}

// NewEmpty creates a server with no published model yet: every
// model-derived endpoint answers 503 until the first SetModel or
// Stage/Commit. Catalogs use it so a model whose very first load is
// failing still has an addressable (if not-ready) server.
func NewEmpty(opts ...Option) *Server {
	s := &Server{
		flight:         newFlightGroup(),
		requestTimeout: DefaultRequestTimeout,
		maxInflight:    DefaultMaxInflight,
		shutdownGrace:  DefaultShutdownGrace,
		store:          artifact.Shared,
		cacheEntries:   DefaultCacheSize,
		cacheBytes:     DefaultCacheBytes,
		compress:       true,
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for _, opt := range opts {
		opt(s)
	}
	// The cache is built after the options so the entry and byte bounds
	// compose in any order.
	s.cache = newSiteCache(s.cacheEntries, s.cacheBytes)
	return s
}

// buildSnapshot prepares one immutable published state for m: frozen
// raw and defaults-applied documents plus every pre-serialized XML
// view, interned into the server's content store (a swap that does not
// change the document re-resolves to the same artifacts — same ETags,
// no duplicate bytes). It touches no live serving state.
func (s *Server) buildSnapshot(m *core.Model) *snapshot {
	snap := &snapshot{model: m, doc: m.ToXML(), focuses: htmlgen.FocusTargets(m)}
	xmldom.Freeze(snap.doc)
	// Validate once per swap (applying schema defaults) so the request
	// path never re-validates; the defaults-applied document is frozen and
	// shared by every concurrent transformation.
	snap.pubDoc = m.ToXML()
	if errs := core.ValidateDocument(snap.pubDoc); len(errs) > 0 {
		snap.pubErr = fmt.Errorf("document is invalid: %v (%d problems)", errs[0], len(errs))
	}
	xmldom.Freeze(snap.pubDoc)
	const xmlCT = "text/xml; charset=utf-8"
	snap.modelXML = s.store.Intern(xmlCT, []byte(xmldom.SerializeToString(snap.doc, xmldom.WriteOptions{})))
	snap.prettyXML = s.store.Intern("text/plain; charset=utf-8", []byte(xmldom.Pretty(snap.doc)))
	snap.clientXML = s.store.Intern(xmlCT, clientModelXML(snap.doc))
	snap.cwmXMI = s.store.Intern(xmlCT, []byte(cwm.ExportString(m)))
	return snap
}

// install publishes snap as the new current snapshot under the next
// generation and invalidates cached presentations. A non-nil probe
// seeds the multi-page cache entry for the new generation inside the
// same critical section that makes the generation visible — otherwise a
// request landing between the snapshot swap and the seeding would miss
// the cache and redundantly re-publish a site that was just built.
// Returns the new generation.
func (s *Server) install(snap *snapshot, probe *publishedSite) uint64 {
	s.mu.Lock()
	s.gen++
	snap.gen = s.gen
	snap.genHeader = strconv.FormatUint(snap.gen, 10)
	snap.genVal = []string{snap.genHeader}
	gen := s.gen
	s.cache.purge()
	if probe != nil {
		s.cache.add(siteKey{gen: gen, mode: htmlgen.MultiPage}, probe)
	}
	old := s.snap
	s.snap = snap
	s.mu.Unlock()
	if old != nil {
		// Drop the old views' interning references after the swap; any
		// byte-identical view in the new snapshot was interned to the
		// same artifact before this release, so it survives with its
		// ETag intact.
		old.release()
	}
	return gen
}

// SetModel swaps the published model and invalidates cached
// presentations. While the new snapshot is being prepared the server
// reports not-ready on /readyz; requests already holding the old
// snapshot keep being served from it. SetModel installs unconditionally
// (even a snapshot that fails validation — the publication path then
// reports the error per request); use Stage/Commit for verified,
// rollback-capable swaps.
func (s *Server) SetModel(m *core.Model) {
	s.ready.Store(false)
	defer s.ready.Store(true)
	s.install(s.buildSnapshot(m), nil)
}

// StagedModel is a built, shadow-verified snapshot that has not been
// installed yet. Commit makes it live; dropping it rolls back for free
// (the live snapshot was never touched).
type StagedModel struct {
	s     *Server
	snap  *snapshot
	probe *publishedSite
}

// Stage builds the full snapshot for m and shadow-publishes its
// multi-page presentation through the publication pipeline without
// touching the live snapshot. Any failure — schema validation, a
// publication error, ctx cancellation — returns an error and leaves
// the server serving exactly what it served before. Concurrent Stage
// calls are safe; external callers (the catalog) serialize commits per
// model.
func (s *Server) Stage(ctx context.Context, m *core.Model) (*StagedModel, error) {
	snap := s.buildSnapshot(m)
	if snap.pubErr != nil {
		snap.release()
		return nil, snap.pubErr
	}
	s.pubWG.Add(1)
	defer s.pubWG.Done()
	site, err := s.publishSite(ctx, snap, htmlgen.MultiPage, "")
	if err != nil {
		snap.release()
		return nil, fmt.Errorf("shadow publish: %w", err)
	}
	// Interning the shadow-published site here — while the previous
	// generation is still live — is what makes the swap memory-flat for
	// unchanged pages: byte-identical content resolves to the already
	// interned artifacts instead of a second copy.
	return &StagedModel{s: s, snap: snap, probe: newPublishedSite(s.store, site)}, nil
}

// Commit atomically installs the staged snapshot, bumps the
// generation, and seeds the presentation cache with the
// shadow-published site (so the first request after a swap is a warm
// hit). Returns the new generation.
func (st *StagedModel) Commit() uint64 {
	gen := st.s.install(st.snap, st.probe)
	st.s.ready.Store(true)
	return gen
}

// Generation returns the current snapshot generation (0 before any
// model is published). It only ever increases.
func (s *Server) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// Ready reports whether a published model is being served.
func (s *Server) Ready() bool { return s.ready.Load() }

// MarkStale flags every subsequent response with Warning and
// X-Goldweb-Stale headers: the content is a last-good snapshot and the
// model's republish pipeline is currently failing.
func (s *Server) MarkStale(reason string) {
	s.stale.Store(&staleInfo{reason: reason})
}

// ClearStale removes the stale marking (a republish succeeded).
func (s *Server) ClearStale() { s.stale.Store(nil) }

// Stale reports the stale flag and its reason.
func (s *Server) Stale() (bool, string) {
	if st := s.stale.Load(); st != nil {
		return true, st.reason
	}
	return false, ""
}

// Close cancels every in-flight publication and waits for them up to
// the shutdown grace. The handler keeps answering (from caches and
// snapshots); Close is about reclaiming background work — ServeListener
// calls it during shutdown and the catalog calls it when evicting a
// model.
func (s *Server) Close() {
	s.baseCancel()
	ctx, cancel := context.WithTimeout(context.Background(), s.shutdownGrace)
	defer cancel()
	s.awaitPublishes(ctx)
}

// awaitPublishes waits for in-flight publications, bounded by ctx.
// Reports whether everything drained.
func (s *Server) awaitPublishes(ctx context.Context) bool {
	done := make(chan struct{})
	go func() {
		s.pubWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-ctx.Done():
		return false
	}
}

// clientModelXML serializes the document with the xml-stylesheet
// processing instruction that points an XSLT-capable browser at
// /client/single.xsl (the paper's §6 client-side future work).
func clientModelXML(frozen *xmldom.Node) []byte {
	doc := frozen.Editable()
	pi := &xmldom.Node{Type: xmldom.PINode, Name: "xml-stylesheet",
		Data: `type="text/xsl" href="/client/single.xsl"`}
	doc.InsertBefore(pi, doc.DocumentElement())
	return []byte(xmldom.SerializeToString(doc, xmldom.WriteOptions{}))
}

// snapshot returns the current published state (nil before the first
// install on an empty server).
func (s *Server) snapshot() *snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.snap
}

// errUnknownFocus marks a ?focus= naming no fact class of the model.
var errUnknownFocus = errors.New("unknown focus")

// publishCtx derives the context one publication runs under: parented
// on the server lifetime (canceled at shutdown) and bounded by the
// request timeout. It is deliberately not the request's own context —
// singleflight followers share the leader's publication, and one
// client disconnecting must not fail the others.
func (s *Server) publishCtx() (context.Context, context.CancelFunc) {
	if s.requestTimeout > 0 {
		return context.WithTimeout(s.baseCtx, s.requestTimeout)
	}
	return context.WithCancel(s.baseCtx)
}

// publishSite runs the publication pipeline for one cache key.
func (s *Server) publishSite(ctx context.Context, snap *snapshot, mode htmlgen.Mode, focus string) (*htmlgen.Site, error) {
	if s.publish != nil {
		return s.publish(ctx, snap.model, htmlgen.Options{Mode: mode, Focus: focus})
	}
	if snap.pubErr != nil {
		return nil, snap.pubErr
	}
	// Default pipeline: transform the snapshot's frozen, pre-validated
	// document directly — no clone, no re-validation, safe to run
	// concurrently for different cache keys.
	return htmlgen.PublishDocumentContext(ctx, snap.pubDoc,
		htmlgen.Options{Mode: mode, Focus: focus, SkipValidation: true})
}

// siteFor returns the cached (or freshly generated) presentation for
// the given snapshot. The focus is validated against the snapshot's
// fact ids *before* cache lookup, so attacker-chosen values can never
// become cache keys; concurrent misses for the same key share one
// publication via the singleflight group. A failed publication is
// never cached: the error is returned to this round of callers and the
// next request retries cleanly under the same generation key.
func (s *Server) siteFor(snap *snapshot, mode htmlgen.Mode, focus string) (*publishedSite, error) {
	if focus != "" && !snap.focuses[focus] {
		return nil, fmt.Errorf("%w %q: no such fact class", errUnknownFocus, focus)
	}
	key := siteKey{gen: snap.gen, mode: mode, focus: focus}
	if site, ok := s.cache.get(key); ok {
		return site, nil
	}
	return s.flight.Do(key, func() (*publishedSite, error) {
		s.pubWG.Add(1)
		defer s.pubWG.Done()
		ctx, cancel := s.publishCtx()
		defer cancel()
		site, err := s.publishSite(ctx, snap, mode, focus)
		if err != nil {
			return nil, err
		}
		p := newPublishedSite(s.store, site)
		s.cache.add(key, p)
		return p, nil
	})
}

// site is siteFor on the current snapshot (kept for tests and simple
// callers).
func (s *Server) site(mode htmlgen.Mode, focus string) (*publishedSite, error) {
	return s.siteFor(s.snapshot(), mode, focus)
}

// siteError maps a publication error onto the right status code.
func siteError(w http.ResponseWriter, err error) {
	if errors.Is(err, errUnknownFocus) {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// Handler returns the full HTTP handler, middleware included:
//
//	GET /                  redirect to /site/index.html
//	GET /site/<page>       multi-page presentation (?focus=<factid>)
//	GET /single            single-page presentation (?focus=<factid>)
//	GET /model.xml         the XML document (Fig. 3)
//	GET /pretty            pretty-printed XML, a browser's raw view (Fig. 4)
//	GET /schema.xsd        the canonical XML Schema
//	GET /validate          plain-text validation report
//	GET /client/model.xml  XML + xml-stylesheet PI for client-side XSLT (§6 future work)
//	GET /client/single.xsl the stylesheet the browser applies
//	GET /cwm.xmi           CWM OLAP interchange document (§6 future work)
//	GET /healthz           liveness (always 200 while the process serves)
//	GET /readyz            readiness (503 while SetModel swaps the model)
//
// Health endpoints sit outside the limiter and timeout so orchestrators
// can still probe a saturated server.
func (s *Server) Handler() http.Handler {
	app := withLimiter(s.maxInflight, withTimeout(s.requestTimeout, s.AppHandler()))
	root := http.NewServeMux()
	root.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	root.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			respondError(w, r, http.StatusServiceUnavailable, "model swap in progress", "1")
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ready")
	})
	root.Handle("/", app)
	return withRecovery(withMethods(root))
}

// AppHandler returns the application routes with the per-model
// response decoration (stale and generation headers) but without the
// outer middleware stack — catalogs mount many of these behind one
// shared recovery/limiter/timeout stack.
func (s *Server) AppHandler() http.Handler {
	mux := s.appMux()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if st := s.stale.Load(); st != nil {
			w.Header().Set("Warning", `110 goldweb "stale content: republish failing"`)
			w.Header().Set(StaleHeader, st.reason)
		}
		mux.ServeHTTP(w, r)
	})
}

// snapFor fetches the current snapshot for a handler, answering 503
// (with Retry-After) when no model has been published yet — an empty
// catalog entry whose first load keeps failing. Returns nil after
// writing the response.
func (s *Server) snapFor(w http.ResponseWriter, r *http.Request) *snapshot {
	snap := s.snapshot()
	if snap == nil {
		respondError(w, r, http.StatusServiceUnavailable, "no model published yet", "1")
		return nil
	}
	// Assigning the pre-rendered slice (the header name is already in
	// canonical form) keeps the warm path allocation-free.
	w.Header()[GenerationHeader] = snap.genVal
	return snap
}

// Static artifacts: process-constant content served with the same
// conditional/variant discipline as published pages.
var (
	staticSchemaXSD = artifact.New("text/xml; charset=utf-8", []byte(core.SchemaXSD))
	staticStyleCSS  = artifact.New("text/css; charset=utf-8", []byte(core.StyleCSS))
	staticSingleXSL = artifact.New("text/xml; charset=utf-8", []byte(core.SingleXSL))
)

// appMux builds the application routes (no middleware).
func (s *Server) appMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, "/site/index.html", http.StatusFound)
	})
	mux.HandleFunc("/site/", func(w http.ResponseWriter, r *http.Request) {
		snap := s.snapFor(w, r)
		if snap == nil {
			return
		}
		page := strings.TrimPrefix(r.URL.Path, "/site/")
		if page == "" {
			page = htmlgen.IndexName
		}
		if page != path.Clean(page) || strings.Contains(page, "/") {
			http.NotFound(w, r)
			return
		}
		site, err := s.siteFor(snap, htmlgen.MultiPage, r.URL.Query().Get("focus"))
		if err != nil {
			siteError(w, err)
			return
		}
		a := site.page(page)
		if a == nil {
			http.NotFound(w, r)
			return
		}
		a.Serve(w, r, s.compress)
	})
	mux.HandleFunc("/single", func(w http.ResponseWriter, r *http.Request) {
		snap := s.snapFor(w, r)
		if snap == nil {
			return
		}
		site, err := s.siteFor(snap, htmlgen.SinglePage, r.URL.Query().Get("focus"))
		if err != nil {
			siteError(w, err)
			return
		}
		a := site.page(htmlgen.IndexName)
		if a == nil {
			http.Error(w, "presentation has no index page", http.StatusInternalServerError)
			return
		}
		a.Serve(w, r, s.compress)
	})
	mux.HandleFunc("/style.css", func(w http.ResponseWriter, r *http.Request) {
		staticStyleCSS.Serve(w, r, s.compress)
	})
	mux.HandleFunc("/model.xml", func(w http.ResponseWriter, r *http.Request) {
		if snap := s.snapFor(w, r); snap != nil {
			snap.modelXML.Serve(w, r, s.compress)
		}
	})
	mux.HandleFunc("/pretty", func(w http.ResponseWriter, r *http.Request) {
		if snap := s.snapFor(w, r); snap != nil {
			snap.prettyXML.Serve(w, r, s.compress)
		}
	})
	// The paper's §6 future work: "when the browsers completely support
	// XML and XSLT, the transformation will be able to be performed in the
	// browser ... removing some of the processing load from the server."
	// /client/model.xml carries an xml-stylesheet processing instruction,
	// and the stylesheet itself is served next to it, so an XSLT-capable
	// browser renders the model client-side.
	mux.HandleFunc("/client/model.xml", func(w http.ResponseWriter, r *http.Request) {
		if snap := s.snapFor(w, r); snap != nil {
			snap.clientXML.Serve(w, r, s.compress)
		}
	})
	mux.HandleFunc("/client/single.xsl", func(w http.ResponseWriter, r *http.Request) {
		staticSingleXSL.Serve(w, r, s.compress)
	})
	mux.HandleFunc("/cwm.xmi", func(w http.ResponseWriter, r *http.Request) {
		if snap := s.snapFor(w, r); snap != nil {
			snap.cwmXMI.Serve(w, r, s.compress)
		}
	})
	mux.HandleFunc("/schema.xsd", func(w http.ResponseWriter, r *http.Request) {
		staticSchemaXSD.Serve(w, r, s.compress)
	})
	mux.HandleFunc("/validate", func(w http.ResponseWriter, r *http.Request) {
		snap := s.snapFor(w, r)
		if snap == nil {
			return
		}
		// Validation applies schema defaults to the document, so it works
		// on a private editable copy of the frozen snapshot.
		doc := snap.doc.Editable()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		schemaErrs := core.ValidateDocument(doc)
		semErrs := snap.model.Validate()
		if len(schemaErrs) == 0 && len(semErrs) == 0 {
			fmt.Fprintf(w, "VALID: %s conforms to the XML Schema and the metamodel constraints\n", snap.model.Name)
			return
		}
		var lines []string
		for _, e := range schemaErrs {
			lines = append(lines, "schema: "+e.Error())
		}
		for _, e := range semErrs {
			lines = append(lines, "model: "+e.Error())
		}
		sort.Strings(lines)
		fmt.Fprintf(w, "INVALID: %d problems\n", len(lines))
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	})
	return mux
}

func contentType(page string) string {
	switch {
	case strings.HasSuffix(page, ".css"):
		return "text/css; charset=utf-8"
	case strings.HasSuffix(page, ".html"):
		return "text/html; charset=utf-8"
	case strings.HasSuffix(page, ".xml"), strings.HasSuffix(page, ".xsl"):
		return "text/xml; charset=utf-8"
	default:
		return "application/octet-stream"
	}
}

// Serve runs a production http.Server on addr: IO timeouts against slow
// clients, and graceful shutdown when ctx is canceled (in-flight requests
// get the configured grace period to finish). It returns nil on a clean
// shutdown.
func (s *Server) Serve(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.ServeListener(ctx, ln)
}

// ServeListener is Serve on an existing listener (tests use it to bind
// port 0). Shutdown order: cancel in-flight publications first (a
// request blocked behind a hung transformation would otherwise hold
// the drain hostage for the whole grace period), then drain request
// handlers gracefully, then await the publication goroutines so none
// outlive the call.
func (s *Server) ServeListener(ctx context.Context, ln net.Listener) error {
	writeTimeout := 2 * s.requestTimeout
	if writeTimeout <= 0 {
		writeTimeout = 2 * DefaultRequestTimeout
	}
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadTimeout:       10 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), s.shutdownGrace)
		defer cancel()
		s.baseCancel() // stop in-flight publications
		if err := hs.Shutdown(shutdownCtx); err != nil {
			hs.Close()
			return err
		}
		<-errc // always http.ErrServerClosed after Shutdown
		if !s.awaitPublishes(shutdownCtx) {
			return fmt.Errorf("shutdown: publication goroutines did not drain within %s", s.shutdownGrace)
		}
		return nil
	}
}

// ListenAndServe runs the server on addr (blocking, no graceful
// shutdown); kept for compatibility with simple callers.
func (s *Server) ListenAndServe(addr string) error {
	return s.Serve(context.Background(), addr)
}
