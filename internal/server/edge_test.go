package server

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goldweb/internal/artifact"
	"goldweb/internal/core"
	"goldweb/internal/htmlgen"
)

// edgeEndpoints lists every page/app endpoint that serves a frozen
// artifact (everything except the dynamic /validate report).
var edgeEndpoints = []string{
	"/site/index.html",
	"/site/style.css",
	"/single",
	"/style.css",
	"/model.xml",
	"/pretty",
	"/client/model.xml",
	"/client/single.xsl",
	"/cwm.xmi",
	"/schema.xsd",
}

func doReq(t *testing.T, ts *httptest.Server, method, path string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	return resp
}

// TestHeadMatchesGet verifies that HEAD answers with exactly the
// metadata a GET would carry — ETag, Content-Type, Content-Length,
// Content-Encoding, Cache-Control — and a zero-byte body, for both the
// identity and the gzip representation.
func TestHeadMatchesGet(t *testing.T) {
	srv := New(core.SampleSales(), WithArtifactStore(artifact.NewStore()))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	headersOf := []string{"Etag", "Content-Type", "Content-Length", "Content-Encoding", "Cache-Control", "Vary"}
	for _, enc := range []string{"identity", "gzip"} {
		for _, path := range edgeEndpoints {
			// An explicit Accept-Encoding keeps the transport from
			// injecting its own and transparently decompressing, which
			// would strip Content-Length/Content-Encoding from GET only.
			hdr := map[string]string{"Accept-Encoding": enc}
			get := doReq(t, ts, http.MethodGet, path, hdr)
			getBody, _ := io.ReadAll(get.Body)
			get.Body.Close()
			head := doReq(t, ts, http.MethodHead, path, hdr)
			headBody, _ := io.ReadAll(head.Body)
			head.Body.Close()

			if get.StatusCode != http.StatusOK || head.StatusCode != http.StatusOK {
				t.Fatalf("%s (enc=%q): GET %d, HEAD %d", path, enc, get.StatusCode, head.StatusCode)
			}
			if len(getBody) == 0 {
				t.Errorf("%s: GET body empty", path)
			}
			if len(headBody) != 0 {
				t.Errorf("%s (enc=%q): HEAD body has %d bytes", path, enc, len(headBody))
			}
			for _, h := range headersOf {
				if g, hd := get.Header.Get(h), head.Header.Get(h); g != hd {
					t.Errorf("%s (enc=%q): header %s: GET %q, HEAD %q", path, enc, h, g, hd)
				}
			}
			if et := get.Header.Get("Etag"); !strings.HasPrefix(et, `"`) {
				t.Errorf("%s: ETag %q is not a quoted strong validator", path, et)
			}
		}
	}
}

// TestConditionalRequests covers the If-None-Match revalidation path:
// a matching validator gets a bodyless 304 (on GET and HEAD alike,
// weak or strong comparison), a stale one a full 200.
func TestConditionalRequests(t *testing.T) {
	srv := New(core.SampleSales(), WithArtifactStore(artifact.NewStore()))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := doReq(t, ts, http.MethodGet, "/site/index.html", nil)
	io.Copy(io.Discard, first.Body)
	first.Body.Close()
	etag := first.Header.Get("Etag")
	if etag == "" {
		t.Fatal("no ETag on first response")
	}

	cases := []struct {
		name   string
		method string
		inm    string
		want   int
	}{
		{"matching etag", http.MethodGet, etag, http.StatusNotModified},
		{"matching etag HEAD", http.MethodHead, etag, http.StatusNotModified},
		{"weak form", http.MethodGet, "W/" + etag, http.StatusNotModified},
		{"in a list", http.MethodGet, `"deadbeef", ` + etag, http.StatusNotModified},
		{"wildcard", http.MethodGet, "*", http.StatusNotModified},
		{"stale etag", http.MethodGet, `"deadbeef"`, http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := doReq(t, ts, tc.method, "/site/index.html", map[string]string{"If-None-Match": tc.inm})
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			if tc.want == http.StatusNotModified {
				if len(body) != 0 {
					t.Errorf("304 carried %d body bytes", len(body))
				}
				if got := resp.Header.Get("Etag"); got != etag {
					t.Errorf("304 ETag %q, want %q", got, etag)
				}
			}
		})
	}
}

// TestCompressionDisabled verifies WithCompression(false) always serves
// identity even to gzip-capable clients.
func TestCompressionDisabled(t *testing.T) {
	srv := New(core.SampleSales(), WithArtifactStore(artifact.NewStore()), WithCompression(false))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := doReq(t, ts, http.MethodGet, "/site/index.html", map[string]string{"Accept-Encoding": "gzip"})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ce := resp.Header.Get("Content-Encoding"); ce != "" {
		t.Errorf("Content-Encoding %q with compression disabled", ce)
	}
	if !bytes.Contains(body, []byte("<html")) {
		t.Errorf("body is not identity HTML: %.60q", body)
	}
}

// TestGzipVariantsMatchIdentity is the byte-identity differential: for
// every example model, in both presentation modes, the decompressed
// gzip variant of every page must equal the identity bytes.
func TestGzipVariantsMatchIdentity(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "models", "*.xml"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example models found: %v", err)
	}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.ModelFromXMLString(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		srv := New(m, WithArtifactStore(artifact.NewStore()))
		for _, mode := range []htmlgen.Mode{htmlgen.MultiPage, htmlgen.SinglePage} {
			site, err := srv.site(mode, "")
			if err != nil {
				t.Fatalf("%s mode %v: %v", path, mode, err)
			}
			checked := 0
			for _, name := range site.order {
				a := site.page(name)
				gz := a.Gzip()
				if gz == nil {
					continue // too small or not worth compressing
				}
				zr, err := gzip.NewReader(bytes.NewReader(gz))
				if err != nil {
					t.Fatalf("%s %s: bad gzip stream: %v", path, name, err)
				}
				plain, err := io.ReadAll(zr)
				zr.Close()
				if err != nil {
					t.Fatalf("%s %s: %v", path, name, err)
				}
				if !bytes.Equal(plain, a.Bytes()) {
					t.Errorf("%s %s (mode %v): decompressed variant differs from identity", path, name, mode)
				}
				checked++
			}
			if checked == 0 {
				t.Errorf("%s mode %v: no page had a gzip variant", path, mode)
			}
		}
	}
}

// TestETagsStableAcrossByteIdenticalSwap republishes the same model
// through a hot swap and asserts the edge contract survives: every
// ETag is unchanged, clients revalidating with the old validator still
// get 304, and the content store did not grow (the regenerated pages
// interned onto the existing artifacts).
func TestETagsStableAcrossByteIdenticalSwap(t *testing.T) {
	store := artifact.NewStore()
	srv := New(core.SampleSales(), WithArtifactStore(store))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	collect := func() map[string]string {
		etags := map[string]string{}
		for _, path := range edgeEndpoints {
			resp := doReq(t, ts, http.MethodGet, path, nil)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: status %d", path, resp.StatusCode)
			}
			etags[path] = resp.Header.Get("Etag")
		}
		return etags
	}

	before := collect()
	interned := store.Len()

	srv.SetModel(core.SampleSales()) // byte-identical republish
	after := collect()

	for path, et := range before {
		if after[path] != et {
			t.Errorf("%s: ETag changed across byte-identical swap: %q -> %q", path, et, after[path])
		}
	}
	if got := store.Len(); got != interned {
		t.Errorf("store grew across byte-identical swap: %d -> %d artifacts", interned, got)
	}

	// A client that cached before the swap still revalidates cheaply.
	resp := doReq(t, ts, http.MethodGet, "/site/index.html",
		map[string]string{"If-None-Match": before["/site/index.html"]})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("revalidation after swap: status %d, want 304", resp.StatusCode)
	}
}
