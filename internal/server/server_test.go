package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"goldweb/internal/core"
)

func get(t *testing.T, ts *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	srv := New(core.SampleSales())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	t.Run("root redirects to the site", func(t *testing.T) {
		resp, err := ts.Client().Get(ts.URL + "/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.Request.URL.Path != "/site/index.html" {
			t.Errorf("landed on %s", resp.Request.URL.Path)
		}
	})

	t.Run("server-side transformation returns HTML", func(t *testing.T) {
		code, body, ctype := get(t, ts, "/site/index.html")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !strings.Contains(ctype, "text/html") {
			t.Errorf("content type %s", ctype)
		}
		if !strings.Contains(body, "Multidimensional model: Sales DW") {
			t.Errorf("body: %.120s", body)
		}
	})

	t.Run("fact class page", func(t *testing.T) {
		code, body, _ := get(t, ts, "/site/f1.html")
		if code != http.StatusOK || !strings.Contains(body, "Fact class: Sales") {
			t.Errorf("status %d body %.120s", code, body)
		}
	})

	t.Run("css served", func(t *testing.T) {
		code, body, ctype := get(t, ts, "/site/style.css")
		if code != http.StatusOK || !strings.Contains(ctype, "text/css") ||
			!strings.Contains(body, "mintcream") {
			t.Errorf("css: %d %s", code, ctype)
		}
	})

	t.Run("missing page 404s", func(t *testing.T) {
		if code, _, _ := get(t, ts, "/site/nope.html"); code != http.StatusNotFound {
			t.Errorf("status %d", code)
		}
	})

	t.Run("path traversal rejected", func(t *testing.T) {
		req, _ := http.NewRequest("GET", ts.URL+"/site/sub/../index.html", nil)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		// Either the client normalizes the path (200 on index) or the
		// server rejects it — it must never serve anything else.
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
			t.Errorf("status %d", resp.StatusCode)
		}
	})

	t.Run("single page mode", func(t *testing.T) {
		code, body, _ := get(t, ts, "/single")
		if code != http.StatusOK || !strings.Contains(body, `href="#f1"`) {
			t.Errorf("single: %d", code)
		}
	})

	t.Run("focused presentation", func(t *testing.T) {
		code, body, _ := get(t, ts, "/single?focus=f1")
		if code != http.StatusOK || !strings.Contains(body, "Sales") {
			t.Errorf("focused: %d", code)
		}
	})

	t.Run("model.xml", func(t *testing.T) {
		code, body, ctype := get(t, ts, "/model.xml")
		if code != http.StatusOK || !strings.Contains(ctype, "xml") ||
			!strings.Contains(body, "<goldmodel") {
			t.Errorf("model.xml: %d %s", code, ctype)
		}
	})

	t.Run("pretty", func(t *testing.T) {
		_, body, _ := get(t, ts, "/pretty")
		if !strings.Contains(body, "\n  <factclasses>") {
			t.Errorf("pretty body: %.120s", body)
		}
	})

	t.Run("schema.xsd", func(t *testing.T) {
		_, body, _ := get(t, ts, "/schema.xsd")
		if !strings.Contains(body, `<xsd:simpleType name="Multiplicity">`) {
			t.Error("schema body incomplete")
		}
	})

	t.Run("validate reports valid", func(t *testing.T) {
		_, body, _ := get(t, ts, "/validate")
		if !strings.HasPrefix(body, "VALID:") {
			t.Errorf("validate: %.120s", body)
		}
	})
}

func TestServerValidateReportsProblems(t *testing.T) {
	m := core.SampleSales()
	m.Facts[0].SharedAggs[0].DimClass = "ghost"
	srv := New(m)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, body, _ := get(t, ts, "/validate")
	if !strings.HasPrefix(body, "INVALID:") {
		t.Errorf("validate: %.200s", body)
	}
	if !strings.Contains(body, "ghost") {
		t.Errorf("culprit missing: %s", body)
	}
}

func TestServerModelSwapInvalidatesCache(t *testing.T) {
	srv := New(core.SampleSales())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, body, _ := get(t, ts, "/site/index.html")
	if !strings.Contains(body, "Sales DW") {
		t.Fatal("initial model missing")
	}
	srv.SetModel(core.SampleHospital())
	_, body, _ = get(t, ts, "/site/index.html")
	if !strings.Contains(body, "Hospital DW") {
		t.Error("cache not invalidated")
	}
}

func TestServerConcurrentRequests(t *testing.T) {
	srv := New(core.SampleSales())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	paths := []string{
		"/site/index.html", "/site/f1.html", "/single", "/model.xml",
		"/pretty", "/schema.xsd", "/validate", "/single?focus=f1",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, err := ts.Client().Get(ts.URL + paths[(w+i)%len(paths)])
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d for %s", resp.StatusCode, paths[(w+i)%len(paths)])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestClientSideTransformationEndpoints(t *testing.T) {
	srv := New(core.SampleSales())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body, ctype := get(t, ts, "/client/model.xml")
	if code != http.StatusOK || !strings.Contains(ctype, "xml") {
		t.Fatalf("client model: %d %s", code, ctype)
	}
	if !strings.Contains(body, `<?xml-stylesheet type="text/xsl" href="/client/single.xsl"?>`) {
		t.Errorf("xml-stylesheet PI missing: %.200s", body)
	}
	if !strings.Contains(body, "<goldmodel") {
		t.Error("model content missing")
	}

	code, body, _ = get(t, ts, "/client/single.xsl")
	if code != http.StatusOK || !strings.Contains(body, `xmlns:xsl="http://www.w3.org/1999/XSL/Transform"`) {
		t.Errorf("stylesheet endpoint: %d", code)
	}
}

func TestCWMEndpoint(t *testing.T) {
	srv := New(core.SampleSales())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, body, _ := get(t, ts, "/cwm.xmi")
	if code != http.StatusOK || !strings.Contains(body, "<CWMOLAP:Schema") {
		t.Errorf("cwm endpoint: %d %.120s", code, body)
	}
}
