package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// The middleware stack hardening the serving path (§6 moved the XSLT
// transformation into the server, making it the single point of failure):
//
//	withRecovery  — a panicking handler becomes a 500, not a dead connection
//	withMethods   — the site is read-only: non-GET/HEAD gets 405 + Allow
//	withLimiter   — a semaphore sheds load with 503 + Retry-After when full
//	withTimeout   — a hanging handler yields 504 on that request only

// wantsJSON reports whether the client asked for a JSON error body.
func wantsJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// respondError writes an error response consistently across the
// middleware stack: Retry-After when the condition is retryable, and a
// JSON body ({"error": ..., "status": ...}) when the client sends
// Accept: application/json — load shedding (503) and timeouts (504)
// must look the same to an API client.
func respondError(w http.ResponseWriter, r *http.Request, code int, msg, retryAfter string) {
	if retryAfter != "" {
		w.Header().Set("Retry-After", retryAfter)
	}
	if wantsJSON(r) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("X-Content-Type-Options", "nosniff")
		w.WriteHeader(code)
		fmt.Fprintf(w, "{\"error\":%q,\"status\":%d}\n", msg, code)
		return
	}
	http.Error(w, msg, code)
}

// RespondError exposes the shared error-response shape (Retry-After +
// JSON body on Accept: application/json) to handlers built on top of
// this package — the catalog's routing errors must look exactly like
// the server's own 503s and 504s.
func RespondError(w http.ResponseWriter, r *http.Request, code int, msg, retryAfter string) {
	respondError(w, r, code, msg, retryAfter)
}

// HardenOuter wraps h in the outermost middleware layers: panic
// recovery and read-only method enforcement. HardenApp supplies the
// inner layers; the catalog composes both around many model servers so
// the whole fleet shares one consistent stack.
func HardenOuter(h http.Handler) http.Handler {
	return withRecovery(withMethods(h))
}

// HardenApp wraps h in the expensive-path guards: load shedding at
// maxInflight concurrent requests (0 disables) and a per-request
// wall-clock timeout (0 disables). Health endpoints belong outside it.
func HardenApp(maxInflight int, timeout time.Duration, h http.Handler) http.Handler {
	return withLimiter(maxInflight, withTimeout(timeout, h))
}

// withRecovery converts a handler panic into a 500 response. It is the
// outermost layer so a re-panic from the timeout goroutine is also caught.
func withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				http.Error(w, fmt.Sprintf("internal error: %v", rec), http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withMethods rejects methods other than GET and HEAD with 405.
func withMethods(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// withLimiter bounds the number of requests inside the expensive part of
// the stack. Excess requests are shed immediately with 503 + Retry-After
// instead of queueing without bound behind a slow transformation.
func withLimiter(n int, next http.Handler) http.Handler {
	if n <= 0 {
		return next
	}
	sem := make(chan struct{}, n)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			respondError(w, r, http.StatusServiceUnavailable, "server is saturated, retry shortly", "1")
		}
	})
}

// withTimeout bounds one request's wall-clock time. The inner handler
// runs on its own goroutine against a buffered writer; if the deadline
// fires first the client gets 504 and the stragglers' output is
// discarded. The request context carries the deadline so context-aware
// handlers can stop early. A panic on the inner goroutine is forwarded
// to the serving goroutine for withRecovery to translate.
func withTimeout(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		r = r.WithContext(ctx)
		bw := getBufferedResponse()
		done := make(chan struct{})
		panicked := make(chan any, 1)
		go func() {
			defer func() {
				if rec := recover(); rec != nil {
					panicked <- rec
					return
				}
				close(done)
			}()
			next.ServeHTTP(bw, r)
		}()
		select {
		case <-done:
			bw.copyTo(w)
			// Only the completed path may recycle the buffer: on timeout
			// or panic the straggler goroutine may still be writing to it.
			bufRespPool.Put(bw)
		case rec := <-panicked:
			panic(rec)
		case <-ctx.Done():
			// Same contract as the 503 shed: retryable, with a JSON body
			// for API clients — a timed-out transformation usually
			// succeeds on retry once the cache is warm.
			respondError(w, r, http.StatusGatewayTimeout, "request timed out", "1")
		}
	})
}

// bufRespPool recycles response buffers across requests: a warm
// cached-site hit reuses a previously grown body buffer instead of
// allocating a fresh copy of the page per request.
var bufRespPool = sync.Pool{
	New: func() any { return &bufferedResponse{header: make(http.Header)} },
}

// getBufferedResponse returns a reset buffer from the pool. Resetting at
// borrow time (rather than at Put) keeps the invariant local: whatever
// state a recycled buffer carries, the next request starts clean.
func getBufferedResponse() *bufferedResponse {
	b := bufRespPool.Get().(*bufferedResponse)
	b.code = http.StatusOK
	b.wroteCode = false
	clear(b.header)
	b.body.Reset()
	return b
}

// bufferedResponse captures a handler's full response so it can be
// replayed — or abandoned — atomically by withTimeout.
type bufferedResponse struct {
	header    http.Header
	code      int
	wroteCode bool
	body      bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if !b.wroteCode {
		b.code = code
		b.wroteCode = true
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) { return b.body.Write(p) }

func (b *bufferedResponse) copyTo(w http.ResponseWriter) {
	dst := w.Header()
	for k, vs := range b.header {
		dst[k] = vs
	}
	w.WriteHeader(b.code)
	w.Write(b.body.Bytes())
}
