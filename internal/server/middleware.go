package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// The middleware stack hardening the serving path (§6 moved the XSLT
// transformation into the server, making it the single point of failure):
//
//	withRecovery  — a panicking handler becomes a 500, not a dead connection
//	withMethods   — the site is read-only: non-GET/HEAD gets 405 + Allow
//	withLimiter   — a semaphore sheds load with 503 + Retry-After when full
//	withTimeout   — a hanging handler yields 504 on that request only

// withRecovery converts a handler panic into a 500 response. It is the
// outermost layer so a re-panic from the timeout goroutine is also caught.
func withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				http.Error(w, fmt.Sprintf("internal error: %v", rec), http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// withMethods rejects methods other than GET and HEAD with 405.
func withMethods(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// withLimiter bounds the number of requests inside the expensive part of
// the stack. Excess requests are shed immediately with 503 + Retry-After
// instead of queueing without bound behind a slow transformation.
func withLimiter(n int, next http.Handler) http.Handler {
	if n <= 0 {
		return next
	}
	sem := make(chan struct{}, n)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server is saturated, retry shortly", http.StatusServiceUnavailable)
		}
	})
}

// withTimeout bounds one request's wall-clock time. The inner handler
// runs on its own goroutine against a buffered writer; if the deadline
// fires first the client gets 504 and the stragglers' output is
// discarded. The request context carries the deadline so context-aware
// handlers can stop early. A panic on the inner goroutine is forwarded
// to the serving goroutine for withRecovery to translate.
func withTimeout(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		r = r.WithContext(ctx)
		bw := getBufferedResponse()
		done := make(chan struct{})
		panicked := make(chan any, 1)
		go func() {
			defer func() {
				if rec := recover(); rec != nil {
					panicked <- rec
					return
				}
				close(done)
			}()
			next.ServeHTTP(bw, r)
		}()
		select {
		case <-done:
			bw.copyTo(w)
			// Only the completed path may recycle the buffer: on timeout
			// or panic the straggler goroutine may still be writing to it.
			bufRespPool.Put(bw)
		case rec := <-panicked:
			panic(rec)
		case <-ctx.Done():
			http.Error(w, "request timed out", http.StatusGatewayTimeout)
		}
	})
}

// bufRespPool recycles response buffers across requests: a warm
// cached-site hit reuses a previously grown body buffer instead of
// allocating a fresh copy of the page per request.
var bufRespPool = sync.Pool{
	New: func() any { return &bufferedResponse{header: make(http.Header)} },
}

// getBufferedResponse returns a reset buffer from the pool. Resetting at
// borrow time (rather than at Put) keeps the invariant local: whatever
// state a recycled buffer carries, the next request starts clean.
func getBufferedResponse() *bufferedResponse {
	b := bufRespPool.Get().(*bufferedResponse)
	b.code = http.StatusOK
	b.wroteCode = false
	clear(b.header)
	b.body.Reset()
	return b
}

// bufferedResponse captures a handler's full response so it can be
// replayed — or abandoned — atomically by withTimeout.
type bufferedResponse struct {
	header    http.Header
	code      int
	wroteCode bool
	body      bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if !b.wroteCode {
		b.code = code
		b.wroteCode = true
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) { return b.body.Write(p) }

func (b *bufferedResponse) copyTo(w http.ResponseWriter) {
	dst := w.Header()
	for k, vs := range b.header {
		dst[k] = vs
	}
	w.WriteHeader(b.code)
	w.Write(b.body.Bytes())
}
