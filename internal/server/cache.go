package server

import (
	"container/list"
	"fmt"
	"sync"

	"goldweb/internal/htmlgen"
)

// siteKey identifies one cached presentation. The generation number ties
// the entry to the model snapshot it was published from, so a publication
// that finishes after SetModel swapped the model can never be served for
// the new one.
type siteKey struct {
	gen   uint64
	mode  htmlgen.Mode
	focus string
}

// siteCache is a bounded LRU of published presentations. It accounts
// cost in bytes (the summed identity size of every page artifact), not
// entries: a site's footprint is what matters under a byte budget, and
// the per-focus sites of a large model are not the same size as the
// plain multi-page one. An entry cap is kept as a secondary bound
// (distinct ?focus= values were historically the DoS vector).
//
// Eviction releases the evicted site's artifact references, so pages no
// other generation (or model) interns are dropped from the shared
// content store; in-flight responses holding the artifacts are
// unaffected.
type siteCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used; values are *cacheEntry
	m          map[siteKey]*list.Element
}

type cacheEntry struct {
	key  siteKey
	site *publishedSite
}

func newSiteCache(maxEntries int, maxBytes int64) *siteCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	if maxBytes < 0 {
		maxBytes = 0 // 0 disables the byte budget
	}
	return &siteCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		m:          map[siteKey]*list.Element{},
	}
}

func (c *siteCache) get(key siteKey) (*publishedSite, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).site, true
}

func (c *siteCache) add(key siteKey, site *publishedSite) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		if ent.site != site {
			c.bytes += site.size - ent.site.size
			ent.site.release()
			ent.site = site
		}
		c.evictLocked()
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, site: site})
	c.bytes += site.size
	c.evictLocked()
}

// evictLocked drops least-recently-used entries until both bounds hold.
// The most recent entry always survives, even when it alone exceeds the
// byte budget — evicting the page a client is about to fetch would turn
// an over-budget site into a republish-per-request thrash.
func (c *siteCache) evictLocked() {
	for c.ll.Len() > 1 &&
		(c.ll.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		ent := oldest.Value.(*cacheEntry)
		delete(c.m, ent.key)
		c.bytes -= ent.site.size
		ent.site.release()
	}
}

// purge drops every entry (model swap), releasing their artifacts.
func (c *siteCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		el.Value.(*cacheEntry).site.release()
	}
	c.ll.Init()
	c.m = map[siteKey]*list.Element{}
	c.bytes = 0
}

// len reports the current entry count (for tests).
func (c *siteCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// usedBytes reports the accounted identity bytes (for tests/metrics).
func (c *siteCache) usedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// flightGroup is a minimal singleflight: concurrent callers for the same
// key share one in-flight publication instead of queueing behind a lock
// and re-running the transformation each.
type flightGroup struct {
	mu sync.Mutex
	m  map[siteKey]*flightCall
}

type flightCall struct {
	wg   sync.WaitGroup
	site *publishedSite
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: map[siteKey]*flightCall{}}
}

// Do runs fn once per key; duplicate callers wait for the leader and
// share its result. If fn panics, the panic propagates on the leader's
// goroutine (the recovery middleware turns it into a 500) while waiting
// followers receive an error instead of deadlocking.
func (g *flightGroup) Do(key siteKey, fn func() (*publishedSite, error)) (*publishedSite, error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.site, c.err
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	finish := func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		c.wg.Done()
	}
	defer func() {
		if r := recover(); r != nil {
			c.err = fmt.Errorf("publication panicked: %v", r)
			finish()
			panic(r)
		}
		finish()
	}()
	c.site, c.err = fn()
	return c.site, c.err
}
