package server

import (
	"container/list"
	"fmt"
	"sync"

	"goldweb/internal/htmlgen"
)

// siteKey identifies one cached presentation. The generation number ties
// the entry to the model snapshot it was published from, so a publication
// that finishes after SetModel swapped the model can never be served for
// the new one.
type siteKey struct {
	gen   uint64
	mode  htmlgen.Mode
	focus string
}

// siteCache is a bounded LRU of generated presentations. Unbounded
// per-focus caching was a DoS: every distinct ?focus= value allocated a
// whole rendered Site forever.
type siteCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used; values are *cacheEntry
	m   map[siteKey]*list.Element
}

type cacheEntry struct {
	key  siteKey
	site *htmlgen.Site
}

func newSiteCache(max int) *siteCache {
	if max < 1 {
		max = 1
	}
	return &siteCache{max: max, ll: list.New(), m: map[siteKey]*list.Element{}}
}

func (c *siteCache) get(key siteKey) (*htmlgen.Site, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).site, true
}

func (c *siteCache) add(key siteKey, site *htmlgen.Site) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).site = site
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, site: site})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// purge drops every entry (model swap).
func (c *siteCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.m = map[siteKey]*list.Element{}
}

// len reports the current entry count (for tests).
func (c *siteCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flightGroup is a minimal singleflight: concurrent callers for the same
// key share one in-flight publication instead of queueing behind a lock
// and re-running the transformation each.
type flightGroup struct {
	mu sync.Mutex
	m  map[siteKey]*flightCall
}

type flightCall struct {
	wg   sync.WaitGroup
	site *htmlgen.Site
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: map[siteKey]*flightCall{}}
}

// Do runs fn once per key; duplicate callers wait for the leader and
// share its result. If fn panics, the panic propagates on the leader's
// goroutine (the recovery middleware turns it into a 500) while waiting
// followers receive an error instead of deadlocking.
func (g *flightGroup) Do(key siteKey, fn func() (*htmlgen.Site, error)) (*htmlgen.Site, error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.site, c.err
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	finish := func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		c.wg.Done()
	}
	defer func() {
		if r := recover(); r != nil {
			c.err = fmt.Errorf("publication panicked: %v", r)
			finish()
			panic(r)
		}
		finish()
	}()
	c.site, c.err = fn()
	return c.site, c.err
}
