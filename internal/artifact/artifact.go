// Package artifact is the content-addressed layer between the
// publication pipeline (htmlgen) and the HTTP handlers: every published
// byte sequence becomes an immutable Artifact carrying a strong
// content hash (SHA-256) that doubles as its ETag, plus lazily
// materialized precompressed variants selected by Accept-Encoding.
//
// The design goal is CDN discipline on the hot path: a warm request is
// one header assignment batch and one w.Write of pre-frozen bytes — no
// per-request compression, no per-request allocation — and a
// conditional revalidation (If-None-Match) is a 304 with zero body and
// zero allocations.
//
// Artifacts are interned in a Store keyed by content hash, so two
// publications that produce byte-identical pages (a catalog hot swap
// whose source change does not reach every page) share one Artifact:
// the ETag is stable across generations — clients keep their 304s —
// and memory does not double during staged swaps.
package artifact

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// GzipLevel is the compression level variants are built with. Variants
// are materialized once per artifact (never per request), so the
// expensive end of the scale costs nothing on the serving path.
const GzipLevel = gzip.BestCompression

// MinGzipSize is the identity size below which no gzip variant is
// built: the ~20-byte gzip framing plus the Vary-keyed cache split is
// not worth it for tiny payloads.
const MinGzipSize = 128

// CacheControl is the caching policy every artifact response carries:
// any cache may store the page, but it must revalidate — which the
// hash-keyed ETag answers with a free 304 for unchanged content.
const CacheControl = "public, max-age=0, must-revalidate"

// Shared header value slices, pre-allocated once so the serving path
// assigns them into the response header map without allocating.
var (
	cacheControlVal = []string{CacheControl}
	varyVal         = []string{"Accept-Encoding"}
	gzipEncVal      = []string{"gzip"}
)

// Artifact is one immutable published byte sequence plus its serving
// metadata. Create with New or Store.Intern; never mutate the
// underlying bytes afterwards (the hash, ETag and variants all freeze
// the content at construction).
type Artifact struct {
	body        []byte
	contentType string
	sum         [sha256.Size]byte
	etag        string // strong ETag, quotes included

	// Pre-rendered single-value header slices: assigning a prebuilt
	// []string into the header map is allocation-free on the warm path.
	etagVal  []string
	ctypeVal []string
	clenVal  []string

	// compressible gates the gzip variant by content type; the variant
	// itself is built on first demand under gzOnce. gz == nil after the
	// Once means "not worthwhile" (incompressible or already tiny).
	compressible bool
	gzOnce       sync.Once
	gz           []byte
	gzClenVal    []string

	// Interning bookkeeping (nil store for unmanaged artifacts).
	store *Store
	refs  int
}

// New builds an unmanaged artifact (no interning, Release is a no-op)
// — for process-static content like embedded stylesheets and schemas.
func New(contentType string, body []byte) *Artifact {
	a := &Artifact{
		body:         body,
		contentType:  contentType,
		sum:          hashContent(contentType, body),
		compressible: Compressible(contentType),
	}
	a.etag = `"` + hex.EncodeToString(a.sum[:16]) + `"`
	a.etagVal = []string{a.etag}
	a.ctypeVal = []string{contentType}
	a.clenVal = []string{strconv.Itoa(len(body))}
	return a
}

// hashContent addresses content by type AND bytes: the same bytes
// served as text/css and text/html are distinct artifacts (their
// headers differ), so the content type participates in the hash.
func hashContent(contentType string, body []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(contentType))
	h.Write([]byte{0})
	h.Write(body)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// Bytes returns the identity representation.
func (a *Artifact) Bytes() []byte { return a.body }

// ETag returns the strong entity tag (quotes included).
func (a *Artifact) ETag() string { return a.etag }

// ContentType returns the artifact's media type.
func (a *Artifact) ContentType() string { return a.contentType }

// Size returns the identity size in bytes — the unit of cache-budget
// accounting. A materialized gzip variant is always smaller than the
// identity (otherwise it is discarded), so Size bounds the artifact's
// true footprint within a factor of two.
func (a *Artifact) Size() int64 { return int64(len(a.body)) }

// Compressible reports whether a gzip variant is worth building for
// the media type: text-shaped payloads compress, media containers and
// already-compressed formats do not.
func Compressible(contentType string) bool {
	ct := contentType
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	if strings.HasPrefix(ct, "text/") {
		return true
	}
	switch ct {
	case "application/json", "application/xml", "application/javascript",
		"application/xhtml+xml", "image/svg+xml":
		return true
	}
	return false
}

// gzPool recycles gzip writers across variant materializations: the
// per-writer window state (hundreds of KB at BestCompression) is
// allocated once per P, not once per artifact.
var gzPool = sync.Pool{
	New: func() any {
		w, err := gzip.NewWriterLevel(nil, GzipLevel)
		if err != nil {
			panic(err) // GzipLevel is a valid constant
		}
		return w
	},
}

// Gzip returns the precompressed variant, materializing it on first
// use, or nil when compression is not worthwhile for this artifact
// (wrong type, tiny, or the compressed form is not smaller). Safe for
// concurrent use; at most one goroutine pays the compression cost.
func (a *Artifact) Gzip() []byte {
	a.gzOnce.Do(func() {
		if !a.compressible || len(a.body) < MinGzipSize {
			return
		}
		var buf bytes.Buffer
		buf.Grow(len(a.body) / 2)
		zw := gzPool.Get().(*gzip.Writer)
		zw.Reset(&buf)
		zw.Write(a.body)
		if err := zw.Close(); err != nil {
			gzPool.Put(zw)
			return
		}
		gzPool.Put(zw)
		if buf.Len() >= len(a.body) {
			return // the variant must strictly win or it is dropped
		}
		a.gz = buf.Bytes()
		a.gzClenVal = []string{strconv.Itoa(len(a.gz))}
	})
	return a.gz
}

// Release returns one interning reference. For artifacts created with
// New it is a no-op; for interned artifacts the store entry is removed
// once every holder has released (in-flight responses keep the bytes
// alive through the pointer itself — release only ends interning).
func (a *Artifact) Release() {
	if a.store != nil {
		a.store.release(a)
	}
}

// ---- HTTP serving ----

// Serve writes the artifact as a full conditional-GET/HEAD response:
//
//   - ETag, Cache-Control and (for compressible types) Vary are always
//     set, on 304s too, as RFC 9110 prescribes.
//   - If-None-Match matching (strong or weak form, lists, "*") answers
//     with 304 and no body.
//   - When allowCompressed is true the gzip variant is selected by
//     Accept-Encoding q-value negotiation; identity is the fallback.
//   - HEAD carries the headers of the corresponding GET — ETag,
//     Content-Length, Content-Encoding — with a zero-byte body.
//
// The warm path performs no allocation: header values are pre-rendered
// slices and the body is a single Write of pre-frozen bytes.
func (a *Artifact) Serve(w http.ResponseWriter, r *http.Request, allowCompressed bool) {
	h := w.Header()
	h["Etag"] = a.etagVal
	h["Cache-Control"] = cacheControlVal
	if a.compressible && allowCompressed {
		h["Vary"] = varyVal
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" && ETagMatch(inm, a.etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body := a.body
	clen := a.clenVal
	if allowCompressed && AcceptsGzip(r.Header.Get("Accept-Encoding")) {
		if gz := a.Gzip(); gz != nil {
			body = gz
			clen = a.gzClenVal
			h["Content-Encoding"] = gzipEncVal
		}
	}
	h["Content-Type"] = a.ctypeVal
	h["Content-Length"] = clen
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
		return
	}
	w.Write(body)
}

// ETagMatch reports whether the If-None-Match header value matches the
// entity tag. Weak comparison (the W/ prefix is ignored) is correct
// for conditional GET/HEAD revalidation per RFC 9110 §13.1.2. The scan
// allocates nothing.
func ETagMatch(header, etag string) bool {
	if header == "*" {
		return true
	}
	for i := 0; i < len(header); {
		for i < len(header) && (header[i] == ' ' || header[i] == '\t' || header[i] == ',') {
			i++
		}
		if i >= len(header) {
			break
		}
		if header[i] == 'W' && i+1 < len(header) && header[i+1] == '/' {
			i += 2
		}
		j := i
		for j < len(header) && header[j] != ',' {
			j++
		}
		cand := header[i:j]
		for len(cand) > 0 && (cand[len(cand)-1] == ' ' || cand[len(cand)-1] == '\t') {
			cand = cand[:len(cand)-1]
		}
		if cand == etag {
			return true
		}
		i = j
	}
	return false
}

// AcceptsGzip parses an Accept-Encoding header (q-values included) and
// reports whether a gzip response is acceptable: gzip (or x-gzip) is
// listed with q > 0, or a wildcard with q > 0 covers it. An absent
// header means "identity only" here — conservative, and what real
// CDNs do. The parse allocates nothing.
func AcceptsGzip(header string) bool {
	if header == "" {
		return false
	}
	qGzip, qAny := -1, -1
	for i := 0; i < len(header); {
		for i < len(header) && (header[i] == ' ' || header[i] == '\t' || header[i] == ',') {
			i++
		}
		if i >= len(header) {
			break
		}
		j := i
		for j < len(header) && header[j] != ',' {
			j++
		}
		coding, q := parseCoding(header[i:j])
		switch coding {
		case codingGzip:
			qGzip = q
		case codingAny:
			qAny = q
		}
		i = j
	}
	if qGzip >= 0 {
		return qGzip > 0
	}
	return qAny > 0
}

// Internal classification of one Accept-Encoding element.
const (
	codingOther = iota
	codingGzip
	codingAny
)

// parseCoding splits one element ("gzip;q=0.8") into the coding class
// and its q-value in milli-units (1000 when unspecified, 0 on a
// malformed q — a value the sender marked unusable stays unusable).
func parseCoding(elem string) (coding, q int) {
	name := elem
	params := ""
	if i := strings.IndexByte(elem, ';'); i >= 0 {
		name, params = elem[:i], elem[i+1:]
	}
	name = trimSpaces(name)
	switch {
	case equalFold(name, "gzip"), equalFold(name, "x-gzip"):
		coding = codingGzip
	case name == "*":
		coding = codingAny
	default:
		coding = codingOther
	}
	q = 1000
	for params != "" {
		var p string
		if i := strings.IndexByte(params, ';'); i >= 0 {
			p, params = params[:i], params[i+1:]
		} else {
			p, params = params, ""
		}
		p = trimSpaces(p)
		if len(p) >= 2 && (p[0] == 'q' || p[0] == 'Q') && p[1] == '=' {
			q = parseQ(p[2:])
		}
	}
	return coding, q
}

// parseQ parses an RFC 9110 qvalue ("0", "1", "0.75") into milli-units
// without allocating; malformed values parse as 0 (unacceptable).
func parseQ(s string) int {
	if s == "" {
		return 0
	}
	switch s[0] {
	case '1':
		return 1000 // "1", "1.0", "1.000" all mean 1000; junk after '1' rounds down harmlessly
	case '0':
		q := 0
		if len(s) > 1 {
			if s[1] != '.' {
				return 0
			}
			scale := 100
			for i := 2; i < len(s) && i < 5; i++ {
				if s[i] < '0' || s[i] > '9' {
					return 0
				}
				q += int(s[i]-'0') * scale
				scale /= 10
			}
		}
		return q
	}
	return 0
}

func trimSpaces(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

// equalFold is strings.EqualFold restricted to ASCII, inlinable and
// allocation-free for the short coding names it compares.
func equalFold(s, t string) bool {
	if len(s) != len(t) {
		return false
	}
	for i := 0; i < len(s); i++ {
		c, d := s[i], t[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if d >= 'A' && d <= 'Z' {
			d += 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}

// ---- interning store ----

// Store interns artifacts by content hash with reference counting.
// Intern of byte-identical content returns the existing *Artifact —
// same ETag, same backing bytes, shared gzip variant — so republishing
// an unchanged page across generations costs no extra memory and
// clients' cached ETags keep revalidating to 304.
type Store struct {
	mu sync.Mutex
	m  map[[sha256.Size]byte]*Artifact
}

// NewStore creates an empty interning store.
func NewStore() *Store {
	return &Store{m: make(map[[sha256.Size]byte]*Artifact)}
}

// Shared is the process-global store: every model server in a catalog
// interns into it, so byte-identical pages are shared across models
// and across generations process-wide.
var Shared = NewStore()

// Intern returns the canonical artifact for (contentType, body),
// creating it on first sight, and takes one reference the caller must
// Release when it stops holding the artifact (cache eviction, snapshot
// replacement).
func (s *Store) Intern(contentType string, body []byte) *Artifact {
	sum := hashContent(contentType, body)
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.m[sum]; ok {
		a.refs++
		return a
	}
	a := New(contentType, body)
	a.store = s
	a.refs = 1
	s.m[sum] = a
	return a
}

// release returns one reference; the last release removes the store
// entry (holders of the pointer can keep serving — dropping the entry
// only ends interning for future publications).
func (s *Store) release(a *Artifact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a.refs--
	if a.refs <= 0 {
		delete(s.m, a.sum)
	}
}

// Len reports the number of distinct interned artifacts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Bytes reports the summed identity size of every interned artifact —
// the deduplicated footprint of the published content.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, a := range s.m {
		n += int64(len(a.body))
	}
	return n
}
