package artifact

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

const htmlCT = "text/html; charset=utf-8"

func page(n int) []byte {
	var b bytes.Buffer
	b.WriteString("<html><body>")
	for i := 0; i < n; i++ {
		b.WriteString("<p>row ")
		b.WriteString(strconv.Itoa(i))
		b.WriteString(" of the generated presentation</p>")
	}
	b.WriteString("</body></html>")
	return b.Bytes()
}

func TestETagIsStableQuotedAndContentKeyed(t *testing.T) {
	a := New(htmlCT, page(50))
	b := New(htmlCT, page(50))
	c := New(htmlCT, page(51))
	if a.ETag() != b.ETag() {
		t.Errorf("same content, different ETags: %s vs %s", a.ETag(), b.ETag())
	}
	if a.ETag() == c.ETag() {
		t.Error("different content, same ETag")
	}
	if !strings.HasPrefix(a.ETag(), `"`) || !strings.HasSuffix(a.ETag(), `"`) {
		t.Errorf("ETag not quoted: %s", a.ETag())
	}
	// Content type participates in the address: same bytes, different
	// headers, different artifact.
	d := New("text/css; charset=utf-8", page(50))
	if a.ETag() == d.ETag() {
		t.Error("different content type, same ETag")
	}
}

func TestInterningSharesAndReleases(t *testing.T) {
	st := NewStore()
	a := st.Intern(htmlCT, page(40))
	b := st.Intern(htmlCT, append([]byte(nil), page(40)...)) // distinct backing array
	if a != b {
		t.Fatal("byte-identical content not interned to the same artifact")
	}
	if st.Len() != 1 {
		t.Fatalf("store len %d, want 1", st.Len())
	}
	c := st.Intern(htmlCT, page(41))
	if c == a || st.Len() != 2 {
		t.Fatalf("distinct content must make a new entry (len %d)", st.Len())
	}
	a.Release()
	if st.Len() != 2 {
		t.Fatalf("entry dropped while a reference remains (len %d)", st.Len())
	}
	b.Release()
	c.Release()
	if st.Len() != 0 {
		t.Fatalf("store len %d after full release, want 0", st.Len())
	}
	// Releasing an unmanaged artifact is a no-op.
	New(htmlCT, page(3)).Release()
}

func TestGzipVariantRoundTripsAndIsWorthwhile(t *testing.T) {
	a := New(htmlCT, page(100))
	gz := a.Gzip()
	if gz == nil {
		t.Fatal("no gzip variant for a large compressible page")
	}
	if len(gz) >= len(a.Bytes()) {
		t.Fatalf("variant (%d B) not smaller than identity (%d B)", len(gz), len(a.Bytes()))
	}
	zr, err := gzip.NewReader(bytes.NewReader(gz))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, a.Bytes()) {
		t.Error("decompressed variant differs from the identity bytes")
	}
	// Tiny payloads and incompressible types skip the variant.
	if New(htmlCT, []byte("<p>hi</p>")).Gzip() != nil {
		t.Error("tiny payload grew a gzip variant")
	}
	if New("image/png", page(100)).Gzip() != nil {
		t.Error("non-compressible type grew a gzip variant")
	}
}

func TestAcceptsGzip(t *testing.T) {
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{"gzip", true},
		{"gzip, deflate, br", true},
		{"GZIP", true},
		{"x-gzip", true},
		{"deflate", false},
		{"gzip;q=0", false},
		{"gzip;q=0.001", true},
		{"gzip; q=0.5, identity; q=1", true},
		{"identity", false},
		{"*", true},
		{"*;q=0", false},
		{"deflate, *;q=0.1", true},
		{"gzip;q=0, *;q=1", false}, // explicit beats wildcard
		{"br;q=1.0, gzip;q=0.8, *;q=0.1", true},
		{"gzip;q=junk", false},
		{"  gzip  ;  q=0.9  ", true},
	}
	for _, c := range cases {
		if got := AcceptsGzip(c.header); got != c.want {
			t.Errorf("AcceptsGzip(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

func TestETagMatch(t *testing.T) {
	const tag = `"abc123"`
	cases := []struct {
		header string
		want   bool
	}{
		{`"abc123"`, true},
		{`"zzz", "abc123"`, true},
		{`W/"abc123"`, true}, // weak comparison is valid for GET revalidation
		{`"abc1234"`, false},
		{`*`, true},
		{`"zzz"`, false},
		{` "abc123" `, true},
	}
	for _, c := range cases {
		if got := ETagMatch(c.header, tag); got != c.want {
			t.Errorf("ETagMatch(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

func TestServeFullResponse(t *testing.T) {
	a := New(htmlCT, page(100))
	req := httptest.NewRequest(http.MethodGet, "/site/index.html", nil)
	rec := httptest.NewRecorder()
	a.Serve(rec, req, true)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("ETag"); got != a.ETag() {
		t.Errorf("ETag %q", got)
	}
	if got := rec.Header().Get("Cache-Control"); got != CacheControl {
		t.Errorf("Cache-Control %q", got)
	}
	if got := rec.Header().Get("Vary"); got != "Accept-Encoding" {
		t.Errorf("Vary %q", got)
	}
	if got := rec.Header().Get("Content-Length"); got != strconv.Itoa(len(a.Bytes())) {
		t.Errorf("Content-Length %q", got)
	}
	if !bytes.Equal(rec.Body.Bytes(), a.Bytes()) {
		t.Error("body differs from identity bytes")
	}
}

func TestServeConditionalAndVariants(t *testing.T) {
	a := New(htmlCT, page(100))

	t.Run("if-none-match yields 304 with ETag and no body", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodGet, "/", nil)
		req.Header.Set("If-None-Match", a.ETag())
		rec := httptest.NewRecorder()
		a.Serve(rec, req, true)
		if rec.Code != http.StatusNotModified {
			t.Fatalf("status %d", rec.Code)
		}
		if rec.Body.Len() != 0 {
			t.Errorf("304 carried %d body bytes", rec.Body.Len())
		}
		if rec.Header().Get("ETag") != a.ETag() {
			t.Error("304 must carry the ETag")
		}
	})

	t.Run("gzip negotiation", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodGet, "/", nil)
		req.Header.Set("Accept-Encoding", "gzip, br")
		rec := httptest.NewRecorder()
		a.Serve(rec, req, true)
		if rec.Header().Get("Content-Encoding") != "gzip" {
			t.Fatalf("Content-Encoding %q", rec.Header().Get("Content-Encoding"))
		}
		if got := rec.Header().Get("Content-Length"); got != strconv.Itoa(len(a.Gzip())) {
			t.Errorf("Content-Length %q, want %d", got, len(a.Gzip()))
		}
		if !bytes.Equal(rec.Body.Bytes(), a.Gzip()) {
			t.Error("body is not the gzip variant")
		}
	})

	t.Run("compression disabled serves identity", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodGet, "/", nil)
		req.Header.Set("Accept-Encoding", "gzip")
		rec := httptest.NewRecorder()
		a.Serve(rec, req, false)
		if rec.Header().Get("Content-Encoding") != "" {
			t.Error("variant served with compression disabled")
		}
		if !bytes.Equal(rec.Body.Bytes(), a.Bytes()) {
			t.Error("body is not the identity bytes")
		}
	})

	t.Run("HEAD has identical headers and zero body", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodHead, "/", nil)
		req.Header.Set("Accept-Encoding", "gzip")
		rec := httptest.NewRecorder()
		a.Serve(rec, req, true)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
		if rec.Body.Len() != 0 {
			t.Errorf("HEAD carried %d body bytes", rec.Body.Len())
		}
		if rec.Header().Get("ETag") != a.ETag() ||
			rec.Header().Get("Content-Encoding") != "gzip" ||
			rec.Header().Get("Content-Length") != strconv.Itoa(len(a.Gzip())) {
			t.Errorf("HEAD headers differ from GET: %v", rec.Header())
		}
	})
}

// discardWriter is the cheapest possible ResponseWriter: a reusable
// header map and a byte counter, so AllocsPerRun isolates Serve itself.
type discardWriter struct {
	h    http.Header
	code int
	n    int
}

func newDiscardWriter() *discardWriter { return &discardWriter{h: make(http.Header)} }

func (d *discardWriter) Header() http.Header { return d.h }
func (d *discardWriter) WriteHeader(c int)   { d.code = c }
func (d *discardWriter) Write(p []byte) (int, error) {
	d.n += len(p)
	return len(p), nil
}

func TestServeWarmPathsAllocateNothing(t *testing.T) {
	a := New(htmlCT, page(100))
	a.Gzip() // materialize the variant outside the measured region

	w := newDiscardWriter()

	cond := httptest.NewRequest(http.MethodGet, "/", nil)
	cond.Header.Set("If-None-Match", a.ETag())
	if n := testing.AllocsPerRun(200, func() {
		w.code = 0
		a.Serve(w, cond, true)
	}); n != 0 {
		t.Errorf("conditional 304: %v allocs/op, want 0", n)
	}
	if w.code != http.StatusNotModified {
		t.Fatalf("status %d", w.code)
	}

	gz := httptest.NewRequest(http.MethodGet, "/", nil)
	gz.Header.Set("Accept-Encoding", "gzip;q=0.9, identity;q=0.5")
	if n := testing.AllocsPerRun(200, func() {
		w.code = 0
		w.n = 0
		a.Serve(w, gz, true)
	}); n != 0 {
		t.Errorf("warm gzip hit: %v allocs/op, want 0", n)
	}
	if w.n != len(a.Gzip()) {
		t.Fatalf("wrote %d bytes, want the gzip variant (%d)", w.n, len(a.Gzip()))
	}

	plain := httptest.NewRequest(http.MethodGet, "/", nil)
	if n := testing.AllocsPerRun(200, func() {
		w.n = 0
		a.Serve(w, plain, true)
	}); n != 0 {
		t.Errorf("warm identity hit: %v allocs/op, want 0", n)
	}
}

func TestStoreBytesDeduplicates(t *testing.T) {
	st := NewStore()
	body := page(60)
	a := st.Intern(htmlCT, body)
	st.Intern(htmlCT, append([]byte(nil), body...))
	if got := st.Bytes(); got != int64(len(body)) {
		t.Errorf("store bytes %d, want deduplicated %d", got, len(body))
	}
	_ = a
}
