// Package clean exercises every release and hand-off shape poolcheck
// must accept without findings.
package clean

import (
	"sync"

	"poolchecktest/framepool"
)

var bufPool = sync.Pool{New: func() any { return new([]byte) }}

func use(any) {}

// Deferred release satisfies every exit.
func Deferred(fail bool) int {
	b := bufPool.Get().(*[]byte)
	defer bufPool.Put(b)
	if fail {
		return 0
	}
	return len(*b)
}

// Deferred release inside a func literal.
func DeferredLit() {
	b := bufPool.Get()
	defer func() { bufPool.Put(b) }()
	use(b)
}

// Explicit release on every branch.
func AllPaths(fail bool) int {
	b := bufPool.Get().(*[]byte)
	if fail {
		bufPool.Put(b)
		return 0
	}
	n := len(*b)
	bufPool.Put(b)
	return n
}

// Returning the value transfers ownership to the caller.
func Handoff() *[]byte {
	b := bufPool.Get().(*[]byte)
	return b
}

// Storing the value in a longer-lived structure transfers ownership.
var registry = map[string]*[]byte{}

func Store(key string) {
	b := bufPool.Get().(*[]byte)
	registry[key] = b
}

// A goroutine capturing the value owns it now.
func Background(done chan struct{}) {
	b := bufPool.Get()
	go func() {
		use(b)
		bufPool.Put(b)
		close(done)
	}()
}

type conn struct{}

var free []*conn

func getConn() *conn {
	if n := len(free); n > 0 {
		c := free[n-1]
		free = free[:n-1]
		return c
	}
	return new(conn)
}

func putConn(c *conn) { free = append(free, c) }

// Free-list pair used correctly.
func Paired() {
	c := getConn()
	use(c)
	putConn(c)
}

type Emitter struct{ buf []byte }

func NewEmitter() *Emitter { return &Emitter{} }

func (e *Emitter) Release() { e.buf = e.buf[:0] }

// Constructor + Release used correctly, including across a loop.
func Render(parts []string) {
	e := NewEmitter()
	for _, p := range parts {
		_ = p
		use(e)
	}
	e.Release()
}

// Switch releasing in every arm, including default.
func Switched(mode int) {
	b := bufPool.Get()
	switch mode {
	case 0:
		bufPool.Put(b)
	default:
		bufPool.Put(b)
	}
}

// Exported Get/Put pair used correctly: deferred on one path, explicit
// on the other.
func Frames(fail bool) int {
	f := framepool.GetFrame()
	if fail {
		framepool.PutFrame(f)
		return 0
	}
	defer framepool.PutFrame(f)
	return framepool.GetDepth(f)
}

// Accessor binds the result of a Get-prefixed function that has no Put
// counterpart; poolcheck must not demand a release for it.
func Accessor() {
	f := framepool.GetFrame()
	defer framepool.PutFrame(f)
	d := framepool.GetDepth(f)
	use(d)
}

// A select where one arm recycles and the others abandon to a goroutine
// that still holds the value (mirrors a timeout middleware).
func WithTimeout(done, timeout chan struct{}) {
	b := bufPool.Get()
	go func() { use(b) }()
	select {
	case <-done:
		bufPool.Put(b)
	case <-timeout:
	}
}
