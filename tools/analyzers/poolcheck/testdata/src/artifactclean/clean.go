// Package artifactclean exercises every refcount shape poolcheck must
// accept: releases on all paths, deferred releases, and the
// ownership-transfer suppressions (returned, stored, aliased).
package artifactclean

import "poolchecktest/artifactstore"

var store artifactstore.Store

var published = map[string]*artifactstore.Artifact{}

func use(any) {}

// AllPaths releases on both branches.
func AllPaths(body []byte, short bool) int {
	a := store.Intern("text/html", body)
	if short {
		a.Release()
		return 0
	}
	n := len(a.Bytes())
	a.Release()
	return n
}

// Deferred releases via defer.
func Deferred(body []byte) int {
	a := store.Intern("text/html", body)
	defer a.Release()
	return len(a.Bytes())
}

// TransferReturn hands the reference to the caller.
func TransferReturn(body []byte) *artifactstore.Artifact {
	a := store.Intern("text/html", body)
	return a
}

// TransferStore hands the reference to the published map — the same
// shape as the repo's publish path interning page artifacts.
func TransferStore(name string, body []byte) {
	a := store.Intern("text/html", body)
	published[name] = a
}

// PlainAccessor must not be treated as an acquisition: Bytes has no
// Release obligation.
func PlainAccessor(a *artifactstore.Artifact) int {
	b := a.Bytes()
	return len(b)
}
