module poolchecktest

go 1.22
