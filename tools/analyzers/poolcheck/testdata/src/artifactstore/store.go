// Package artifactstore mirrors the reference-counted artifact store
// shape of the repo's internal/artifact package: Store.Intern hands out
// an *Artifact holding one reference the caller must Release.
package artifactstore

// Artifact is a reference-counted blob.
type Artifact struct {
	body []byte
	refs int
}

// Release drops the caller's reference.
func (a *Artifact) Release() { a.refs-- }

// Bytes is a plain accessor; it does not transfer ownership.
func (a *Artifact) Bytes() []byte { return a.body }

// Store interns blobs.
type Store struct{ n int }

// Intern returns an artifact with one reference owned by the caller.
func (s *Store) Intern(contentType string, body []byte) *Artifact {
	s.n++
	return &Artifact{body: body, refs: 1}
}

// Acquire re-acquires an existing artifact, adding a reference.
func (s *Store) Acquire(a *Artifact) *Artifact {
	a.refs++
	return a
}

// InternString is an Intern variant; the prefix convention must cover it.
func (s *Store) InternString(contentType, body string) *Artifact {
	return s.Intern(contentType, []byte(body))
}
