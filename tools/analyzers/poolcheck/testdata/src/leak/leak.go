// Package leak seeds pooled-value leaks that poolcheck must flag.
package leak

import (
	"sync"

	"poolchecktest/framepool"
)

var bufPool = sync.Pool{New: func() any { return new([]byte) }}

func use(any) {}

// EarlyReturn leaks on the failure path: the early return skips Put.
func EarlyReturn(fail bool) int {
	b := bufPool.Get().(*[]byte)
	if fail {
		return 0 // want: return without releasing "b"
	}
	bufPool.Put(b)
	return len(*b)
}

// NeverReleased leaks on every path: no Put at all.
func NeverReleased() {
	b := bufPool.Get()
	use(b)
} // want: falls off scope without release

type conn struct{}

var free []*conn

func getConn() *conn {
	if n := len(free); n > 0 {
		c := free[n-1]
		free = free[:n-1]
		return c
	}
	return new(conn)
}

func putConn(c *conn) { free = append(free, c) }

// LeakyGet leaks the free-list conn on the early return.
func LeakyGet(n int) {
	c := getConn()
	if n > 0 {
		use(c)
		return // want: return without releasing "c"
	}
	putConn(c)
}

// Emitter follows the constructor + Release convention.
type Emitter struct{ buf []byte }

func NewEmitter() *Emitter { return &Emitter{} }

func (e *Emitter) Release() { e.buf = e.buf[:0] }

// LeakyEmitter never calls Release.
func LeakyEmitter() {
	e := NewEmitter()
	use(e)
} // want: falls off scope without release

// LeakyFrame borrows from an exported Get/Put pair in another package
// and leaks on the early return.
func LeakyFrame(n int) {
	f := framepool.GetFrame()
	if n > 0 {
		use(f)
		return // want: return without releasing "f"
	}
	framepool.PutFrame(f)
}

// SwitchLeak releases in only one switch arm.
func SwitchLeak(mode int) {
	b := bufPool.Get()
	switch mode {
	case 0:
		bufPool.Put(b)
	case 1:
		use(b) // want: this arm falls through without release
	}
}
