// Package artifactleak seeds reference-count leaks the artifact-refcount
// mode of poolcheck must flag: interned artifacts that reach a return or
// fall off their scope without Release.
package artifactleak

import "poolchecktest/artifactstore"

var store artifactstore.Store

func use(any) {}

// EarlyReturn leaks the reference on the error-style early exit.
func EarlyReturn(body []byte, bad bool) int {
	a := store.Intern("text/html", body)
	if bad {
		return 0 // leak: a.Release() missing on this path
	}
	n := len(a.Bytes())
	a.Release()
	return n
}

// FallsOffScope leaks by never releasing at all.
func FallsOffScope(body []byte) {
	a := store.Intern("text/html", body)
	use(a.Bytes())
} // leak: falls off scope holding the reference

// VariantLeak leaks an InternString acquisition.
func VariantLeak(s string) {
	a := store.InternString("text/plain", s)
	use(a.Bytes())
} // leak: prefix-variant acquisition, still unreleased

// AcquireLeak leaks a re-acquired reference on one branch.
func AcquireLeak(src *artifactstore.Artifact, keep bool) {
	b := store.Acquire(src)
	if keep {
		use(b.Bytes())
		b.Release()
		return
	}
	return // leak: the added reference is never dropped
}
