// Package framepool mirrors the exported free-list shape of the
// repo's xpath.Frame pool: GetFrame borrows, PutFrame returns.
package framepool

// Frame is a pooled evaluation frame.
type Frame struct{ ops []int }

var free []*Frame

// GetFrame borrows a frame from the pool.
func GetFrame() *Frame {
	if n := len(free); n > 0 {
		f := free[n-1]
		free = free[:n-1]
		return f
	}
	return &Frame{}
}

// PutFrame returns a frame to the pool.
func PutFrame(f *Frame) {
	f.ops = f.ops[:0]
	free = append(free, f)
}

// GetDepth is a plain accessor: it has no PutDepth counterpart, so
// poolcheck must not treat its result as a borrowed value.
func GetDepth(f *Frame) int { return len(f.ops) }
