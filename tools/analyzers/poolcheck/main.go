// Command poolcheck is a go vet tool (for -vettool) that flags
// sync.Pool and free-list acquisitions whose value is not released on
// every return path of the acquiring function.
//
// Four acquisition shapes are recognised:
//
//   - v := pool.Get() on a sync.Pool (released by pool.Put(v))
//   - v := getFoo(...) by naming convention (released by putFoo(v) or
//     any sync.Pool Put(v))
//   - v := NewFoo(...) where v's type has a Release method
//     (released by v.Release())
//   - v := store.Intern(...) / store.Acquire(...) where v's type has a
//     Release method — the artifact.Store reference-count convention;
//     the caller owns one reference until v.Release()
//
// A path is also considered safe when ownership demonstrably leaves the
// function: the value is returned, stored into a field, map, slice or
// global, aliased to another variable, captured by a closure, or sent on
// a channel.
//
// The command speaks the cmd/go vet tool protocol itself (-V=full,
// -flags, and a vet .cfg file argument) so it runs under
// `go vet -vettool=` with no dependency outside the standard library.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// vetConfig mirrors the fields of cmd/go's vet .cfg file that the
// checker needs; unknown fields are ignored.
type vetConfig struct {
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	log.SetFlags(0)
	progname := filepath.Base(os.Args[0])
	log.SetPrefix(progname + ": ")

	// cmd/go interrogates the tool twice before handing it work: once
	// for a version stamp (build cache key) and once for its flags.
	versionFlag := flag.String("V", "", "print version and exit (cmd/go protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (cmd/go protocol)")
	flag.Parse()
	if *versionFlag != "" {
		if *versionFlag != "full" {
			log.Fatalf("unsupported -V mode %q", *versionFlag)
		}
		printVersion(progname)
		return
	}
	if *flagsFlag {
		fmt.Println("[]")
		return
	}
	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf("usage: invoked by go vet as `go vet -vettool=%s`", progname)
	}
	diags, err := run(args[0])
	if err != nil {
		log.Fatal(err)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
}

// printVersion emulates the x/tools unitchecker version line, which
// cmd/go parses to derive a content-addressed tool ID.
func printVersion(progname string) {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", progname, h.Sum(nil))
}

func run(cfgPath string) ([]string, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	// Facts must exist for downstream packages even though poolcheck
	// produces none; dependency-only invocations stop here.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer:  imp,
		GoVersion: versionOnly(cfg.GoVersion),
		Error:     func(error) {}, // keep going; first error returned below
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	if _, err := tc.Check(cfg.ImportPath, fset, files, info); err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	var diags []string
	for _, f := range files {
		// Leaking a pooled object in a test is harmless noise.
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		diags = append(diags, checkFile(fset, f, info)...)
	}
	sort.Strings(diags)
	return diags, nil
}

// versionOnly strips the vet config's GoVersion ("go1.24.0") down to the
// language version types.Config accepts ("go1.24").
func versionOnly(v string) string {
	if !strings.HasPrefix(v, "go") {
		return ""
	}
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return v
	}
	return parts[0] + "." + parts[1]
}
