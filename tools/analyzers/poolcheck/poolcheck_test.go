package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles poolcheck into a temp dir and returns the binary path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "poolcheck")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building poolcheck: %v\n%s", err, out)
	}
	return bin
}

// vet runs `go vet -vettool` on one package of the testdata module and
// returns its combined output and whether it failed.
func vet(t *testing.T, tool, pkg string) (string, bool) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./"+pkg)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	return string(out), err != nil
}

func TestVetToolFindsSeededLeaks(t *testing.T) {
	tool := buildTool(t)
	out, failed := vet(t, tool, "leak")
	if !failed {
		t.Fatalf("vet on seeded leaks must fail; output:\n%s", out)
	}
	for _, want := range []string{
		`leak.go:18:3: return without releasing "b" acquired from bufPool.Get() at line 16`,
		`leak.go:26:2: "b" acquired from bufPool.Get() is never released`,
		`leak.go:50:3: return without releasing "c" acquired from getConn() at line 47`,
		`leak.go:64:2: "e" acquired from NewEmitter() is never released`,
		`leak.go:74:3: return without releasing "f" acquired from framepool.GetFrame() at line 71`,
		`leak.go:81:2: "b" acquired from bufPool.Get() is never released`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing finding %q in output:\n%s", want, out)
		}
	}
}

// TestVetToolFindsArtifactRefcountLeaks covers the artifact-refcount
// mode: Store.Intern/Acquire acquisitions must be released on every
// path, with the same ownership-transfer suppressions as the pool pass.
func TestVetToolFindsArtifactRefcountLeaks(t *testing.T) {
	tool := buildTool(t)
	out, failed := vet(t, tool, "artifactleak")
	if !failed {
		t.Fatalf("vet on seeded refcount leaks must fail; output:\n%s", out)
	}
	for _, want := range []string{
		`leak.go:16:3: return without releasing "a" acquired from store.Intern() at line 14`,
		`leak.go:25:2: "a" acquired from store.Intern() is never released`,
		`leak.go:31:2: "a" acquired from store.InternString() is never released`,
		`leak.go:43:2: return without releasing "b" acquired from store.Acquire() at line 37`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing finding %q in output:\n%s", want, out)
		}
	}
}

func TestVetToolAcceptsArtifactCleanPackage(t *testing.T) {
	tool := buildTool(t)
	out, failed := vet(t, tool, "artifactclean")
	if failed {
		t.Fatalf("vet on clean refcount package must pass; output:\n%s", out)
	}
}

func TestVetToolAcceptsCleanPackage(t *testing.T) {
	tool := buildTool(t)
	out, failed := vet(t, tool, "clean")
	if failed {
		t.Fatalf("vet on clean package must pass; output:\n%s", out)
	}
}

// The repo itself must be poolcheck-clean: the PR-3 pooled buffers and
// xpath-context free lists are exactly where these leaks would hide.
func TestVetToolOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the whole repo under vet")
	}
	tool := buildTool(t)
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("poolcheck findings in the repo: %v\n%s", err, out)
	}
}
