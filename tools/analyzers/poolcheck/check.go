package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An acquisition is one statement that borrows a pooled value into a
// local variable: v := pool.Get(), v := getFoo(...), or v := NewFoo()
// where v's type has a Release method.
type acquisition struct {
	stmt ast.Stmt     // the acquiring assignment
	v    types.Object // the variable holding the borrowed value
	desc string       // human description of the source, e.g. "bufPool.Get()"
}

// checkFile reports every acquisition in f that can reach a function
// exit (or the end of the variable's scope) without being released,
// deferred, or handed off.
func checkFile(fset *token.FileSet, f *ast.File, info *types.Info) []string {
	var diags []string
	for _, body := range functionBodies(f) {
		c := &checker{fset: fset, info: info, body: body}
		diags = append(diags, c.check()...)
	}
	return diags
}

// functionBodies returns the body of every function declaration and
// function literal in the file. Each body is analyzed independently;
// a value captured by a nested literal counts as escaping the outer one.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, n.Body)
		}
		return true
	})
	return bodies
}

type checker struct {
	fset *token.FileSet
	info *types.Info
	body *ast.BlockStmt

	// per-acquisition walk state
	v        types.Object
	desc     string
	deferred bool // a deferred call releases v, satisfying every exit
	escaped  bool // ownership left this function; stop tracking
	diags    []string
}

func (c *checker) check() []string {
	var diags []string
	for _, acq := range c.findAcquisitions() {
		list, idx := findStmt(c.body, acq.stmt)
		if list == nil {
			continue
		}
		c.v, c.desc = acq.v, acq.desc
		c.deferred, c.escaped, c.diags = false, false, nil
		released, terminated := c.walkStmts(list[idx+1:], false)
		if !released && !terminated && !c.deferred && !c.escaped {
			pos := c.fset.Position(acq.stmt.Pos())
			c.diags = append(c.diags, fmt.Sprintf(
				"%s: %q acquired from %s is never released on the path falling off its scope",
				pos, acq.v.Name(), acq.desc))
		}
		diags = append(diags, c.diags...)
	}
	return diags
}

// findAcquisitions scans the immediate statements of the body (at any
// block depth, but not inside nested function literals) for borrowing
// assignments.
func (c *checker) findAcquisitions() []acquisition {
	var acqs []acquisition
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate function; analyzed on its own
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		call := unwrapCall(as.Rhs[0])
		if call == nil {
			return true
		}
		desc, ok := c.acquireDesc(call, id)
		if !ok {
			return true
		}
		obj := c.info.Defs[id]
		if obj == nil {
			obj = c.info.Uses[id]
		}
		if obj != nil {
			acqs = append(acqs, acquisition{stmt: as, v: obj, desc: desc})
		}
		return true
	}
	ast.Inspect(c.body, walk)
	return acqs
}

// unwrapCall digs the call expression out of `pool.Get().(*T)` shapes.
func unwrapCall(e ast.Expr) *ast.CallExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			return x
		default:
			return nil
		}
	}
}

// acquireDesc classifies a call as a borrowing acquisition.
func (c *checker) acquireDesc(call *ast.CallExpr, lhs *ast.Ident) (string, bool) {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn.Sel.Name == "Get" && len(call.Args) == 0 && isSyncPool(c.info, fn.X) {
			return exprString(fn.X) + ".Get()", true
		}
		if isGetterName(fn.Sel.Name) {
			return fn.Sel.Name + "()", true
		}
		if c.isPairedGetter(fn.Sel) {
			return exprString(fn.X) + "." + fn.Sel.Name + "()", true
		}
		if strings.HasPrefix(fn.Sel.Name, "New") && c.hasReleaseMethod(lhs) {
			return fn.Sel.Name + "()", true
		}
		if isRefcountAcquire(fn.Sel.Name) && c.hasReleaseMethod(lhs) {
			return exprString(fn.X) + "." + fn.Sel.Name + "()", true
		}
	case *ast.Ident:
		if isGetterName(fn.Name) {
			return fn.Name + "()", true
		}
		if c.isPairedGetter(fn) {
			return fn.Name + "()", true
		}
		if strings.HasPrefix(fn.Name, "New") && c.hasReleaseMethod(lhs) {
			return fn.Name + "()", true
		}
	}
	return "", false
}

// isGetterName matches the free-list borrowing convention: getCtx,
// getBufferedResponse, ...
func isGetterName(name string) bool {
	return len(name) > 3 && strings.HasPrefix(name, "get") && name[3] >= 'A' && name[3] <= 'Z'
}

// isRefcountAcquire matches the reference-counted store convention of
// artifact.Store: Intern/Acquire (and variants like InternBytes) return
// a value holding a reference the caller owns until it calls Release.
// Only meaningful combined with hasReleaseMethod on the receiving
// variable, which keeps ordinary accessors out.
func isRefcountAcquire(name string) bool {
	return strings.HasPrefix(name, "Intern") || strings.HasPrefix(name, "Acquire")
}

// isPairedGetter recognises the exported free-list convention — GetFrame
// released by PutFrame — without tripping on ordinary accessors like
// GetAttrNS: the callee must be a package-level function whose defining
// package also declares the matching Put counterpart.
func (c *checker) isPairedGetter(id *ast.Ident) bool {
	name := id.Name
	if len(name) <= 3 || !strings.HasPrefix(name, "Get") || name[3] < 'A' || name[3] > 'Z' {
		return false
	}
	fn := c.packageFunc(id)
	return fn != nil && hasCounterpart(fn, "Put"+name[3:])
}

// isPairedPutter is the release side of isPairedGetter: an exported
// Put* package-level function whose package declares the Get counterpart.
func (c *checker) isPairedPutter(id *ast.Ident) bool {
	name := id.Name
	if len(name) <= 3 || !strings.HasPrefix(name, "Put") || name[3] < 'A' || name[3] > 'Z' {
		return false
	}
	fn := c.packageFunc(id)
	return fn != nil && hasCounterpart(fn, "Get"+name[3:])
}

// packageFunc resolves id to the package-level function it names, or nil
// when it is a method, a variable of function type, or unresolved.
func (c *checker) packageFunc(id *ast.Ident) *types.Func {
	fn, ok := c.info.ObjectOf(id).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// hasCounterpart reports whether fn's defining package also declares a
// package-level function with the given name.
func hasCounterpart(fn *types.Func, name string) bool {
	obj, ok := fn.Pkg().Scope().Lookup(name).(*types.Func)
	return ok && obj != nil
}

// hasReleaseMethod reports whether the declared variable's type carries
// a Release or Free method — the free-list convention for constructors.
func (c *checker) hasReleaseMethod(id *ast.Ident) bool {
	obj := c.info.Defs[id]
	if obj == nil {
		obj = c.info.Uses[id]
	}
	if obj == nil {
		return false
	}
	for _, name := range []string{"Release", "Free"} {
		if m, _, _ := types.LookupFieldOrMethod(obj.Type(), true, obj.Pkg(), name); m != nil {
			if _, ok := m.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}

func isSyncPool(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.UnaryExpr:
		return exprString(x.X)
	}
	return "pool"
}

// findStmt locates the statement list directly containing target and its
// index within it, searching every block-like node of body.
func findStmt(body *ast.BlockStmt, target ast.Stmt) ([]ast.Stmt, int) {
	var list []ast.Stmt
	idx := -1
	ast.Inspect(body, func(n ast.Node) bool {
		if idx >= 0 {
			return false
		}
		var stmts []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			stmts = n.List
		case *ast.CaseClause:
			stmts = n.Body
		case *ast.CommClause:
			stmts = n.Body
		default:
			return true
		}
		for i, s := range stmts {
			if s == target {
				list, idx = stmts, i
				return false
			}
		}
		return true
	})
	return list, idx
}

// walkStmts threads the released state through a statement list. It
// returns the state at the end of the list and whether every path
// through it terminates (return/panic).
func (c *checker) walkStmts(stmts []ast.Stmt, released bool) (bool, bool) {
	for _, s := range stmts {
		var term bool
		released, term = c.walkStmt(s, released)
		if term {
			return released, true
		}
		if c.deferred || c.escaped {
			return true, false
		}
	}
	return released, false
}

func (c *checker) walkStmt(s ast.Stmt, released bool) (bool, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if c.isRelease(call) {
				return true, false
			}
			if isTerminalCall(call) {
				return released, true
			}
		}
		c.scanEscape(s.X)
		return released, false

	case *ast.DeferStmt:
		if c.isRelease(s.Call) || c.deferReleases(s.Call) {
			c.deferred = true
			return true, false
		}
		c.scanEscape(s.Call)
		return released, false

	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			if call := unwrapCall(r); call != nil && c.isRelease(call) {
				return true, false
			}
			if c.usesV(r) {
				c.escaped = true // aliased or stored; ownership is elsewhere now
				return true, false
			}
			c.scanEscape(r)
		}
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok && c.info.ObjectOf(id) == c.v {
				c.escaped = true // v reassigned; the borrowed value is gone
				return true, false
			}
		}
		return released, false

	case *ast.DeclStmt:
		if c.usesV(s.Decl) {
			c.escaped = true
			return true, false
		}
		return released, false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if c.usesV(r) {
				c.escaped = true // ownership transferred to the caller
				return true, true
			}
		}
		if !released && !c.deferred && !c.escaped {
			pos := c.fset.Position(s.Pos())
			acq := c.fset.Position(c.v.Pos())
			c.diags = append(c.diags, fmt.Sprintf(
				"%s: return without releasing %q acquired from %s at line %d",
				pos, c.v.Name(), c.desc, acq.Line))
		}
		return released, true

	case *ast.IfStmt:
		if s.Init != nil {
			released, _ = c.walkStmt(s.Init, released)
		}
		c.scanEscape(s.Cond)
		r1, t1 := c.walkStmts(s.Body.List, released)
		r2, t2 := released, false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			r2, t2 = c.walkStmts(e.List, released)
		case *ast.IfStmt:
			r2, t2 = c.walkStmt(e, released)
		}
		switch {
		case t1 && t2:
			return released, true
		case t1:
			return r2, false
		case t2:
			return r1, false
		default:
			return r1 && r2, false
		}

	case *ast.BlockStmt:
		return c.walkStmts(s.List, released)

	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, released)

	case *ast.ForStmt, *ast.RangeStmt:
		// Loops run zero or more times: walk the body to catch returns
		// and escapes inside it, but do not credit body releases to the
		// fall-through path.
		var body *ast.BlockStmt
		switch s := s.(type) {
		case *ast.ForStmt:
			body = s.Body
		case *ast.RangeStmt:
			body = s.Body
			c.scanEscape(s.X)
		}
		c.walkStmts(body.List, released)
		return released, false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.walkClauses(s, released)

	case *ast.GoStmt:
		c.scanEscape(s.Call)
		return released, false

	case *ast.SendStmt:
		if c.usesV(s.Value) {
			c.escaped = true
			return true, false
		}
		return released, false

	case *ast.BranchStmt:
		// break/continue/goto leave this block; treat the path as
		// handled elsewhere rather than guessing the jump target.
		return released, true
	}
	return released, false
}

// walkClauses merges the clause bodies of a switch or select: the state
// after the statement is the conjunction of every falling-through
// clause, plus the no-clause path when there is no default.
func (c *checker) walkClauses(s ast.Stmt, released bool) (bool, bool) {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			released, _ = c.walkStmt(s.Init, released)
		}
		if s.Tag != nil {
			c.scanEscape(s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
		hasDefault = true // select always takes exactly one ready case
	}
	out, allTerm := true, true
	for _, cl := range clauses {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			body = cl.Body
		case *ast.CommClause:
			body = cl.Body
		}
		r, t := c.walkStmts(body, released)
		if !t {
			out = out && r
			allTerm = false
		}
	}
	if !hasDefault {
		out = out && released
		allTerm = false
	}
	if allTerm && len(clauses) > 0 {
		return released, true
	}
	return out, false
}

// isRelease reports whether call returns the tracked value to its pool:
// pool.Put(v), putFoo(v), v.Release(), or v.Free().
func (c *checker) isRelease(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		if (fn.Sel.Name == "Release" || fn.Sel.Name == "Free") && len(call.Args) == 0 {
			if id, ok := fn.X.(*ast.Ident); ok && c.info.ObjectOf(id) == c.v {
				return true
			}
		}
		if fn.Sel.Name == "Put" && isSyncPool(c.info, fn.X) && c.argUsesV(call) {
			return true
		}
		if isPutterName(fn.Sel.Name) && c.argUsesV(call) {
			return true
		}
		if c.isPairedPutter(fn.Sel) && c.argUsesV(call) {
			return true
		}
	case *ast.Ident:
		if isPutterName(fn.Name) && c.argUsesV(call) {
			return true
		}
		if c.isPairedPutter(fn) && c.argUsesV(call) {
			return true
		}
	}
	return false
}

func isPutterName(name string) bool {
	return len(name) > 3 && strings.HasPrefix(name, "put") && name[3] >= 'A' && name[3] <= 'Z'
}

func (c *checker) argUsesV(call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if c.usesV(a) {
			return true
		}
	}
	return false
}

// deferReleases reports whether a deferred func literal releases v.
func (c *checker) deferReleases(call *ast.CallExpr) bool {
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && c.isRelease(call) {
			found = true
		}
		return !found
	})
	return found
}

// scanEscape marks v escaped when an expression captures it beyond a
// plain call argument: a closure referencing it, a composite literal
// embedding it, or taking its address.
func (c *checker) scanEscape(n ast.Node) {
	if n == nil || c.escaped {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if c.escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if c.usesV(n.Body) {
				c.escaped = true
			}
			return false
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if id, ok := e.(*ast.Ident); ok && c.info.ObjectOf(id) == c.v {
					c.escaped = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && c.usesV(n.X) {
				c.escaped = true
			}
		}
		return true
	})
}

// usesV reports whether the subtree mentions the tracked variable.
func (c *checker) usesV(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.info.ObjectOf(id) == c.v {
			found = true
		}
		return !found
	})
	return found
}

// isTerminalCall recognizes calls that never return.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		name := fn.Sel.Name
		if x, ok := fn.X.(*ast.Ident); ok {
			switch x.Name + "." + name {
			case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
				return true
			}
		}
	}
	return false
}
