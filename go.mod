module goldweb

go 1.22
