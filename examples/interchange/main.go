// interchange demonstrates the paper's §6 future-work lines that this
// reproduction implements:
//
//  1. CWM OLAP XMI export — "the Common Warehouse Metamodel as a common
//     framework to easily interchange warehouse metadata" — including the
//     TaggedValue extensions that carry the MD properties CWM lacks
//     (additivity, derivation rules, {OID}/{D}, non-strictness), and the
//     structural reader on the consuming side.
//
//  2. Client-side transformation — the XML document emitted with an
//     xml-stylesheet processing instruction so an XSLT-capable browser
//     performs the transformation itself.
//
//     go run ./examples/interchange [-o dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"goldweb"
	"goldweb/internal/core"
	"goldweb/internal/cwm"
	"goldweb/internal/xmldom"
)

func main() {
	out := flag.String("o", "interchange-out", "output directory")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	model := goldweb.SampleSales()
	fmt.Printf("== %s ==\n", model)

	// (1) Export to CWM and read it back on the "other tool" side.
	xmi := goldweb.ExportCWM(model)
	xmiPath := filepath.Join(*out, "sales-cwm.xmi")
	if err := os.WriteFile(xmiPath, []byte(xmi), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", xmiPath, len(xmi))

	inv, err := cwm.ReadString(xmi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consumer inventory: schema %q, %d cubes %v, %d dimensions %v,\n"+
		"  %d levels, %d measures, %d hierarchy steps, %d tagged extensions\n",
		inv.SchemaName, len(inv.Cubes), inv.Cubes, len(inv.Dimensions), inv.Dimensions,
		inv.Levels, inv.Measures, inv.Hierarchy, inv.Tagged)

	// (2) The client-side bundle: model.xml with the xml-stylesheet PI,
	// the stylesheet, and the CSS — everything a browser needs to render
	// the model without a server.
	doc := model.ToXML()
	pi := &xmldom.Node{Type: xmldom.PINode, Name: "xml-stylesheet",
		Data: `type="text/xsl" href="single.xsl"`}
	doc.InsertBefore(pi, doc.DocumentElement())
	files := map[string]string{
		"model.xml":  xmldom.SerializeToString(doc, xmldom.WriteOptions{}),
		"single.xsl": core.SingleXSL,
		"style.css":  core.StyleCSS,
	}
	for name, content := range files {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
	fmt.Printf("\nopen %s in an XSLT-capable browser: the transformation\n"+
		"runs client-side, as the paper's §6 anticipated.\n",
		filepath.Join(*out, "model.xml"))
}
