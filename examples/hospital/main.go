// hospital demonstrates the advanced multidimensional properties and the
// paper's Fig. 5: one model, one stylesheet, several presentations.
//
// The model has two fact classes (Admissions, Treatments) sharing the
// Patient/Time/Ward dimensions, a many-to-many relationship between
// admissions and diagnoses, and a non-strict complete risk-group
// hierarchy. The example publishes one presentation per fact class —
// each hides the dimensions that fact does not aggregate — plus an
// OLAP query showing the many-to-many contribution.
//
//	go run ./examples/hospital [-o dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"goldweb"
	"goldweb/internal/olap"
)

func main() {
	out := flag.String("o", "hospital-site", "output directory")
	flag.Parse()

	model := goldweb.SampleHospital()
	fmt.Printf("== %s ==\n", model)
	if problems := goldweb.Validate(model); len(problems) > 0 {
		log.Fatalf("invalid: %v", problems)
	}

	// Fig. 5: generate a presentation per fact class from the same XML
	// document and the same stylesheet (only the focus parameter varies).
	for _, fact := range model.Facts {
		site, err := goldweb.Publish(model, goldweb.PublishOptions{
			Mode:  goldweb.MultiPage,
			Focus: fact.ID,
		})
		if err != nil {
			log.Fatal(err)
		}
		if errs := goldweb.CheckLinks(site); len(errs) > 0 {
			log.Fatalf("broken links in %s presentation: %v", fact.Name, errs)
		}
		dir := filepath.Join(*out, "presentation-"+fact.Name)
		if err := site.WriteTo(dir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("presentation for fact class %-11s → %2d pages in %s\n",
			fact.Name, len(site.HTMLPages()), dir)
	}
	// And the complete, unfocused presentation for comparison.
	site, err := goldweb.Publish(model, goldweb.PublishOptions{Mode: goldweb.MultiPage})
	if err != nil {
		log.Fatal(err)
	}
	full := filepath.Join(*out, "presentation-full")
	if err := site.WriteTo(full); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full presentation                  → %2d pages in %s\n",
		len(site.HTMLPages()), full)

	// Load a small dataset and show many-to-many + non-strict behaviour.
	ds := goldweb.NewDataset(model)
	time := ds.Dim("Time")
	time.AddMember("Month", "m1", "January")
	for _, d := range []string{"d1", "d2", "d3"} {
		time.AddMember("", d, d)
		time.MustLink("", d, "Month", "m1")
	}
	patient := ds.Dim("Patient")
	patient.AddMember("RiskGroup", "low", "Low risk")
	patient.AddMember("RiskGroup", "high", "High risk")
	patient.AddMember("", "alice", "Alice")
	patient.AddMember("", "bob", "Bob")
	patient.MustLink("", "alice", "RiskGroup", "high")
	patient.MustLink("", "alice", "RiskGroup", "low") // non-strict
	patient.MustLink("", "bob", "RiskGroup", "low")
	diag := ds.Dim("Diagnosis")
	diag.AddMember("DiagnosisGroup", "resp", "Respiratory")
	diag.AddMember("", "flu", "Influenza")
	diag.AddMember("", "asthma", "Asthma")
	diag.MustLink("", "flu", "DiagnosisGroup", "resp")
	diag.MustLink("", "asthma", "DiagnosisGroup", "resp")
	ward := ds.Dim("Ward")
	ward.AddMember("", "north", "North wing")

	adm := ds.Fact("Admissions")
	adm.MustAdd(olap.Row{
		Coords: map[string][]string{
			"Time": {"d1"}, "Patient": {"alice"}, "Ward": {"north"},
			"Diagnosis": {"flu", "asthma"}, // one admission, two diagnoses
		},
		Measures:   map[string]float64{"stay_days": 7, "cost": 3200},
		Degenerate: map[string]string{"admission_id": "A-1"},
	})
	adm.MustAdd(olap.Row{
		Coords: map[string][]string{
			"Time": {"d2"}, "Patient": {"bob"}, "Ward": {"north"},
			"Diagnosis": {"flu"},
		},
		Measures:   map[string]float64{"stay_days": 3, "cost": 900},
		Degenerate: map[string]string{"admission_id": "A-2"},
	})

	fmt.Println("\n-- stay days per diagnosis (the m2m admission counts for both) --")
	res, err := ds.Execute(olap.Query{
		Fact:    "Admissions",
		Aggs:    []olap.Agg{{Measure: "stay_days", Op: "SUM"}, {Measure: "stay_days", Op: "COUNT"}},
		GroupBy: []olap.GroupBy{{Dim: "Diagnosis"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	fmt.Println("\n-- cost per risk group (Alice, non-strict, lands in both) --")
	res, err = ds.Execute(olap.Query{
		Fact:    "Admissions",
		Aggs:    []olap.Agg{{Measure: "cost", Op: "SUM"}},
		GroupBy: []olap.GroupBy{{Dim: "Patient", Level: "RiskGroup"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	fmt.Println("\n-- the model's cube class --")
	res, err = ds.ExecuteCube("StayByRiskGroup")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
}
