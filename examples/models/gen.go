// Command models regenerates the committed model documents that CI
// lints (`goldweb lint examples/models`): one XML file per example
// program, written next to this file.
//
//	go run ./examples/models
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
)

func main() {
	dir := "examples/models"
	if _, err := os.Stat("gen.go"); err == nil {
		dir = "." // invoked from inside the directory
	}
	for name, src := range modelSources() {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
}
