package main

import (
	"log"

	"goldweb"
)

// modelSources returns the XML for each example program's model, keyed
// by output file name. webportal and interchange run off the same two
// sample models; the corpus mirrors what each program actually serves.
func modelSources() map[string]string {
	return map[string]string{
		"quickstart.xml":  goldweb.PrettyXML(coffeeModel()),
		"salesdw.xml":     goldweb.PrettyXML(goldweb.SampleSales()),
		"hospital.xml":    goldweb.PrettyXML(goldweb.SampleHospital()),
		"webportal.xml":   goldweb.PrettyXML(goldweb.SampleSales()),
		"interchange.xml": goldweb.PrettyXML(goldweb.SampleHospital()),
	}
}

// coffeeModel rebuilds the quickstart example's espresso-bar model (the
// example itself is a main package, so the builder calls are mirrored
// here; keep the two in sync).
func coffeeModel() *goldweb.Model {
	b := goldweb.NewModel("Coffee Sales").
		Describe("Espresso bar sales, built in the quickstart example.")

	timeDim := b.TimeDimension("Time").
		Key("day_id", "OID").
		Descriptor("day_date", "Date")
	timeDim.Level("Month").
		Key("month_id", "OID").
		Descriptor("month_name", "String")
	timeDim.Rollup("Month")

	b.Dimension("Drink").
		Key("drink_id", "OID").
		Descriptor("drink_name", "String").
		Attr("size", "String")

	sales := b.Fact("Sales").
		Aggregates("Time").
		Aggregates("Drink")
	sales.Measure("cups", "Integer").Describe("Cups sold.")
	sales.Measure("amount", "Currency").Describe("Revenue.")

	m, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return m
}
