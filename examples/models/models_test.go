package main

import (
	"os"
	"testing"
)

// The committed corpus must match what the generator produces: a model
// change without `go run ./examples/models` fails here, so CI always
// lints current documents.
func TestCommittedModelsAreCurrent(t *testing.T) {
	for name, want := range modelSources() {
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("%s: %v (run `go run ./examples/models`)", name, err)
		}
		if string(got) != want {
			t.Errorf("%s is stale: run `go run ./examples/models`", name)
		}
	}
}
