// webportal runs the client-server architecture of the paper's §6: the
// XSLT stylesheet is applied to the model's XML document in the server
// and the HTML is returned to the browser.
//
//	go run ./examples/webportal [-addr :8080] [-model sales|hospital]
//
// Endpoints:
//
//	/site/index.html   linked multi-page presentation (?focus=<factid>)
//	/single            the one-page presentation
//	/model.xml         the stored XML document
//	/pretty            the raw browser view (no stylesheet)
//	/schema.xsd        the canonical XML Schema
//	/validate          on-demand validation report
package main

import (
	"flag"
	"fmt"
	"log"

	"goldweb"
	"goldweb/internal/core"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	which := flag.String("model", "sales", "model to serve: sales or hospital")
	flag.Parse()

	var m *core.Model
	switch *which {
	case "sales":
		m = goldweb.SampleSales()
	case "hospital":
		m = goldweb.SampleHospital()
	default:
		log.Fatalf("unknown -model %q", *which)
	}

	srv := goldweb.NewServer(m)
	fmt.Printf("serving %q on http://localhost%s/\n", m.Name, *addr)
	fmt.Println("  /site/index.html  — navigable presentation (Fig. 6)")
	fmt.Println("  /single           — single-page presentation")
	fmt.Println("  /model.xml        — the XML document (Fig. 3)")
	fmt.Println("  /pretty           — raw view without XSLT (Fig. 4)")
	fmt.Println("  /schema.xsd       — the XML Schema")
	fmt.Println("  /validate         — validation report")
	log.Fatal(srv.ListenAndServe(*addr))
}
