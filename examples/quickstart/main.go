// Quickstart: build a small conceptual multidimensional model with the
// fluent API, validate it against the canonical XML Schema, and publish
// it as a single navigable HTML page.
//
//	go run ./examples/quickstart [-o dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"

	"goldweb"
)

func main() {
	out := flag.String("o", "quickstart-site", "output directory")
	flag.Parse()

	// A minimal coffee-shop model: one fact class, two dimensions.
	b := goldweb.NewModel("Coffee Sales").
		Describe("Espresso bar sales, built in the quickstart example.")

	timeDim := b.TimeDimension("Time").
		Key("day_id", "OID").
		Descriptor("day_date", "Date")
	timeDim.Level("Month").
		Key("month_id", "OID").
		Descriptor("month_name", "String")
	timeDim.Rollup("Month")

	b.Dimension("Drink").
		Key("drink_id", "OID").
		Descriptor("drink_name", "String").
		Attr("size", "String")

	sales := b.Fact("Sales").
		Aggregates("Time").
		Aggregates("Drink")
	sales.Measure("cups", "Integer").Describe("Cups sold.")
	sales.Measure("amount", "Currency").Describe("Revenue.")

	model, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Validate: XML Schema + metamodel constraints.
	if problems := goldweb.Validate(model); len(problems) > 0 {
		for _, p := range problems {
			fmt.Println("problem:", p)
		}
		log.Fatal("model is invalid")
	}
	fmt.Printf("model %q is valid\n", model.Name)

	// The XML document the CASE tool would store.
	fmt.Println("\n--- model XML (first lines) ---")
	xml := goldweb.PrettyXML(model)
	for i, line := range splitLines(xml, 12) {
		fmt.Printf("%2d  %s\n", i+1, line)
	}

	// Publish a single-page presentation.
	site, err := goldweb.Publish(model, goldweb.PublishOptions{Mode: goldweb.SinglePage})
	if err != nil {
		log.Fatal(err)
	}
	if errs := goldweb.CheckLinks(site); len(errs) > 0 {
		log.Fatalf("broken links: %v", errs)
	}
	if err := site.WriteTo(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d files; open %s in a browser\n",
		len(site.Pages), filepath.Join(*out, "index.html"))
}

func splitLines(s string, max int) []string {
	var out []string
	start := 0
	for i := 0; i < len(s) && len(out) < max; i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
