<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:output method="html"/>
  <xsl:template match="/">
    <html>
      <body>
        <h1><xsl:value-of select="library/@name"/></h1>
        <xsl:apply-templates select="library/*"/>
      </body>
    </html>
  </xsl:template>
  <xsl:template match="book">
    <p><b><xsl:value-of select="title"/></b> (<xsl:value-of select="isbn"/>)</p>
  </xsl:template>
  <xsl:template match="journal">
    <p><i><xsl:value-of select="title"/></i> #<xsl:value-of select="issue"/></p>
  </xsl:template>
  <xsl:template match="extensions"/>
</xsl:stylesheet>
