// salesdw reproduces the paper's running example end to end:
//
//  1. build the sales-ticket conceptual model (degenerate dimensions,
//     additivity rules, alternative classification paths — §2),
//
//  2. store it as a schema-valid XML document (Fig. 3) and show the raw
//     browser view (Fig. 4),
//
//  3. publish the linked multi-page web presentation (Fig. 6),
//
//  4. load instance data and run cube-class queries with roll-up /
//     drill-down and additivity enforcement,
//
//  5. export the snowflake DDL + DML for a relational OLAP target.
//
//     go run ./examples/salesdw [-o dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"goldweb"
	"goldweb/internal/core"
	"goldweb/internal/olap"
	"goldweb/internal/star"
)

func main() {
	out := flag.String("o", "salesdw-site", "output directory")
	flag.Parse()

	model := goldweb.SampleSales()
	fmt.Printf("== %s ==\n", model)

	// (1) validation: the CASE tool's round trip of §3.2.
	if problems := goldweb.Validate(model); len(problems) > 0 {
		log.Fatalf("invalid model: %v", problems)
	}
	fmt.Println("schema + metamodel validation: OK")

	// (2) the XML document (Fig. 3) and the raw pretty view (Fig. 4).
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	xmlPath := filepath.Join(*out, "sales.xml")
	if err := os.WriteFile(xmlPath, []byte(goldweb.ModelXML(model)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", xmlPath)
	pretty := goldweb.PrettyXML(model)
	fmt.Printf("pretty XML: %d lines (first: %s)\n",
		strings.Count(pretty, "\n"), firstLine(pretty))

	// (3) the multi-page presentation (Fig. 6): index → fact page →
	// additivity popup → dimension pages, all links checked.
	site, err := goldweb.Publish(model, goldweb.PublishOptions{Mode: goldweb.MultiPage})
	if err != nil {
		log.Fatal(err)
	}
	if errs := goldweb.CheckLinks(site); len(errs) > 0 {
		log.Fatalf("broken links: %v", errs)
	}
	if err := site.WriteTo(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d linked pages to %s\n", len(site.HTMLPages()), *out)

	// (4) instance data + OLAP.
	ds := loadData(model)
	fmt.Println("\n-- cube class: QtyByProductAndMonth (measures/slice/dice) --")
	res, err := ds.ExecuteCube("QtyByProductAndMonth")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	fmt.Println("\n-- roll-up Month → Year --")
	cube, err := ds.NewCube("Sales", "qty", "total")
	if err != nil {
		log.Fatal(err)
	}
	cube.Dice("Time", "Month")
	if err := cube.RollUp("Time"); err != nil {
		log.Fatal(err)
	}
	res, err = cube.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	fmt.Println("\n-- additivity rules at work --")
	_, err = ds.Execute(olap.Query{
		Fact:    "Sales",
		Aggs:    []olap.Agg{{Measure: "inventory", Op: "SUM"}},
		GroupBy: []olap.GroupBy{{Dim: "Product", Level: "Family"}},
	})
	fmt.Println("SUM(inventory) by Family:", err)
	res, err = ds.Execute(olap.Query{
		Fact:    "Sales",
		Aggs:    []olap.Agg{{Measure: "inventory", Op: "AVG"}},
		GroupBy: []olap.GroupBy{{Dim: "Product", Level: "Family"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("AVG(inventory) by Family is allowed:")
	fmt.Print(res)

	// (5) relational export.
	export, err := star.Generate(model, star.Options{Style: star.Snowflake})
	if err != nil {
		log.Fatal(err)
	}
	dml, err := star.GenerateDML(ds, export)
	if err != nil {
		log.Fatal(err)
	}
	sqlPath := filepath.Join(*out, "sales-snowflake.sql")
	script := export.DDL() + "\n-- data --\n" + strings.Join(dml, "\n") + "\n"
	if err := os.WriteFile(sqlPath, []byte(script), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d CREATE TABLE, %d INSERT)\n",
		sqlPath, len(export.Statements), len(dml))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// loadData fills a small but realistic dataset.
func loadData(model *core.Model) *olap.Dataset {
	ds := olap.NewDataset(model)

	time := ds.Dim("Time")
	time.AddMember("Year", "2001", "2001")
	time.AddMember("Year", "2002", "2002")
	months := map[string]string{
		"2001-12": "2001", "2002-01": "2002", "2002-02": "2002", "2002-03": "2002",
	}
	for m, y := range months {
		time.AddMember("Month", m, m)
		time.MustLink("Month", m, "Year", y)
	}
	time.AddMember("Week", "2002-W05", "week 5")
	time.MustLink("Week", "2002-W05", "Year", "2002")
	days := map[string]string{
		"2001-12-24": "2001-12", "2002-01-05": "2002-01", "2002-01-28": "2002-01",
		"2002-02-14": "2002-02", "2002-03-01": "2002-03",
	}
	for d, m := range days {
		time.AddMember("", d, d)
		time.MustLink("", d, "Month", m)
	}
	time.MustLink("", "2002-01-28", "Week", "2002-W05")

	product := ds.Dim("Product")
	product.AddMember("Group", "g_food", "Food")
	product.AddMember("Group", "g_tech", "Electronics")
	product.AddMember("Family", "f_dairy", "Dairy")
	product.AddMember("Family", "f_bread", "Bakery")
	product.AddMember("Family", "f_audio", "Audio")
	product.MustLink("Family", "f_dairy", "Group", "g_food")
	product.MustLink("Family", "f_bread", "Group", "g_food")
	product.MustLink("Family", "f_audio", "Group", "g_tech")
	prods := []struct{ id, name, family string }{
		{"p_milk", "Milk 1L", "f_dairy"},
		{"p_yogurt", "Yogurt", "f_dairy"},
		{"p_bread", "Baguette", "f_bread"},
		{"p_phones", "Headphones", "f_audio"},
	}
	for _, p := range prods {
		product.AddMember("", p.id, p.name)
		product.MustLink("", p.id, "Family", p.family)
	}

	store := ds.Dim("Store")
	store.AddMember("Province", "alicante", "Alicante")
	store.AddMember("City", "alc", "Alicante")
	store.AddMember("City", "elx", "Elche")
	store.MustLink("City", "alc", "Province", "alicante")
	store.MustLink("City", "elx", "Province", "alicante")
	store.AddMember("", "s_down", "Downtown").Set("address", "Explanada 1")
	store.AddMember("", "s_mall", "Mall").Set("address", "Gran Via 12")
	store.MustLink("", "s_down", "City", "alc")
	store.MustLink("", "s_mall", "City", "elx")

	sales := ds.Fact("Sales")
	rows := []struct {
		day, prod, store string
		qty, price, inv  float64
		ticket, line     string
	}{
		{"2001-12-24", "p_milk", "s_down", 6, 0.95, 120, "T-100", "1"},
		{"2001-12-24", "p_bread", "s_down", 3, 0.60, 80, "T-100", "2"},
		{"2002-01-05", "p_milk", "s_down", 4, 1.00, 110, "T-101", "1"},
		{"2002-01-05", "p_phones", "s_down", 1, 24.90, 15, "T-101", "2"},
		{"2002-01-28", "p_yogurt", "s_mall", 8, 0.40, 60, "T-102", "1"},
		{"2002-02-14", "p_phones", "s_mall", 2, 22.50, 13, "T-103", "1"},
		{"2002-02-14", "p_milk", "s_mall", 5, 1.05, 95, "T-103", "2"},
		{"2002-03-01", "p_bread", "s_down", 10, 0.65, 70, "T-104", "1"},
	}
	for _, r := range rows {
		sales.MustAdd(olap.Row{
			Coords:     olap.Coord("Time", r.day, "Product", r.prod, "Store", r.store),
			Measures:   map[string]float64{"qty": r.qty, "price": r.price, "inventory": r.inv},
			Degenerate: map[string]string{"num_ticket": r.ticket, "num_line": r.line},
		})
	}
	return ds
}
