// Command goldweb is the batch face of the CASE tool: it validates,
// publishes, serves and exports conceptual multidimensional models, and
// doubles as a generic XSLT processor and XML Schema checker.
//
// Usage:
//
//	goldweb sample [sales|hospital]          print a sample model document
//	goldweb validate <model.xml>             schema + metamodel validation
//	goldweb pretty <model.xml>               pretty-print (browser raw view)
//	goldweb publish -o <dir> <model.xml>     generate the HTML presentation
//	goldweb serve -addr :8080 <model.xml>    server-side XSLT over HTTP
//	goldweb serve -catalog <dir>             resilient multi-model catalog
//	goldweb export -style star <model.xml>   relational DDL export
//	goldweb schema                           print the canonical XML Schema
//	goldweb schema-tree [-attrs]             the schema as a tree (Fig. 2)
//	goldweb check-schema <schema.xsd>        XML Schema quality checker
//	goldweb transform <doc.xml> <sheet.xsl>  generic XSLT 1.0/1.1 processor
//	goldweb lint [-json] [path ...]          schema-aware static analysis
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"goldweb/internal/catalog"
	"goldweb/internal/core"
	"goldweb/internal/cwm"
	"goldweb/internal/dtd"
	"goldweb/internal/htmlgen"
	"goldweb/internal/server"
	"goldweb/internal/star"
	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
	"goldweb/internal/xsd"
	"goldweb/internal/xslt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "sample":
		err = cmdSample(args)
	case "validate":
		err = cmdValidate(args)
	case "pretty":
		err = cmdPretty(args)
	case "publish":
		err = cmdPublish(args)
	case "serve":
		err = cmdServe(args)
	case "export":
		err = cmdExport(args)
	case "schema":
		fmt.Print(core.SchemaXSD)
	case "schema-tree":
		err = cmdSchemaTree(args)
	case "check-schema":
		err = cmdCheckSchema(args)
	case "cwm":
		err = cmdCWM(args)
	case "report":
		err = cmdReport(args)
	case "bench":
		err = cmdBench(args)
	case "transform":
		err = cmdTransform(args)
	case "lint":
		err = cmdLint(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "goldweb: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "goldweb:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `goldweb - manage multidimensional models through XML Schemas and XSLT

  goldweb sample [sales|hospital]          print a sample model document
  goldweb validate [-dtd] <model.xml>      schema (or legacy DTD) validation
  goldweb validate -schema f.xsd <doc.xml> validate any document against any
                                           schema (include/import resolved)
  goldweb pretty <model.xml>               pretty-print (browser raw view)
  goldweb publish -o <dir> <model.xml>     generate the HTML presentation
  goldweb serve [-addr :8080] [-timeout 30s] [-max-inflight 64] [-cache-size 64] [-cache-bytes N] [-compress=false] [-lint strict|warn|off] <model.xml>
                                           server-side XSLT over HTTP
  goldweb serve -catalog <dir> [-retry=false] [-breaker-threshold 5]
                                           resilient multi-model catalog:
                                           staged hot swaps with rollback,
                                           retrying reloader, circuit breaker
  goldweb export [-style ...] <model.xml>  relational DDL export
  goldweb schema                           print the canonical XML Schema
  goldweb schema-tree [-attrs] [-f f.xsd]  the schema as a tree (Fig. 2)
  goldweb check-schema <schema.xsd>        XML Schema quality checker
  goldweb transform <doc.xml> <sheet.xsl>  generic XSLT processor
  goldweb lint [-json] [-schema f.xsd] [path ...]
                                           schema-aware static analysis of
                                           stylesheets and model documents

  serve also accepts -schema f.xsd to validate and lint against a custom
  schema (xs:include/xs:import graphs resolve relative to the file); it
  must still describe goldmodel documents, which serve publishes.
  goldweb report                           regenerate the evaluation series
  goldweb bench [-json] [-o out.json] [-load] [-load-only]
                                           measure the evaluation pipelines
                                           and the sustained-load edge RPS/p99
  goldweb cwm <model.xml>                  CWM OLAP interchange export`)
}

func loadModelFile(path string) (*core.Model, *xmldom.Node, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	doc, err := xmldom.Parse(data)
	if err != nil {
		return nil, nil, err
	}
	m, err := core.ModelFromXML(doc)
	if err != nil {
		return nil, nil, err
	}
	return m, doc, nil
}

func sampleByName(name string) (*core.Model, error) {
	switch name {
	case "", "sales":
		return core.SampleSales(), nil
	case "hospital":
		return core.SampleHospital(), nil
	}
	return nil, fmt.Errorf("unknown sample %q (want sales or hospital)", name)
}

func cmdSample(args []string) error {
	name := ""
	if len(args) > 0 {
		name = args[0]
	}
	m, err := sampleByName(name)
	if err != nil {
		return err
	}
	fmt.Print(m.PrettyXML())
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	useDTD := fs.Bool("dtd", false, "validate against the paper's previous DTD proposal instead of the XML Schema")
	schemaPath := fs.String("schema", "", "validate against this schema (with its xs:include/xs:import graph) instead of the GOLD metamodel")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: goldweb validate [-dtd|-schema file.xsd] <model.xml>")
	}
	if *schemaPath != "" {
		if *useDTD {
			return fmt.Errorf("validate: -dtd and -schema are mutually exclusive")
		}
		// Generic instance validation: any document against any schema.
		// The GOLD metamodel's semantic checks do not apply here.
		s, err := xsd.LoadSchemaFile(*schemaPath)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		doc, err := xmldom.Parse(data)
		if err != nil {
			return err
		}
		errs := s.Validate(doc, xsd.ValidateOptions{ApplyDefaults: true})
		for _, e := range errs {
			fmt.Printf("schema: %s\n", e)
		}
		if len(errs) > 0 {
			return fmt.Errorf("%d problems", len(errs))
		}
		fmt.Printf("VALID against %s (%d source files): <%s>\n",
			*schemaPath, len(s.SourceFiles()), doc.DocumentElement().Name)
		return nil
	}
	if *useDTD {
		// DTD validation works on the raw document: a DTD cannot see the
		// data-type problems that would stop the model loader.
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		doc, err := xmldom.Parse(data)
		if err != nil {
			return err
		}
		d, err := dtd.Parse(core.SchemaDTD)
		if err != nil {
			return err
		}
		errs := d.Validate(doc)
		for _, e := range errs {
			fmt.Printf("dtd: %s\n", e)
		}
		if len(errs) > 0 {
			return fmt.Errorf("%d problems", len(errs))
		}
		fmt.Printf("VALID (DTD only — no data types, unselective references): %s\n",
			doc.DocumentElement().AttrValue("name"))
		return nil
	}
	m, doc, err := loadModelFile(fs.Arg(0))
	if err != nil {
		return err
	}
	schemaErrs := core.ValidateDocument(doc)
	semErrs := m.Validate()
	for _, e := range schemaErrs {
		fmt.Printf("schema: %s\n", e)
	}
	for _, e := range semErrs {
		fmt.Printf("model: %s\n", e)
	}
	if len(schemaErrs)+len(semErrs) > 0 {
		return fmt.Errorf("%d problems", len(schemaErrs)+len(semErrs))
	}
	fmt.Printf("VALID: %s (%d fact classes, %d dimension classes, %d cube classes)\n",
		m.Name, len(m.Facts), len(m.Dims), len(m.Cubes))
	return nil
}

func cmdPretty(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: goldweb pretty <model.xml>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	doc, err := xmldom.Parse(data)
	if err != nil {
		return err
	}
	fmt.Print(xmldom.Pretty(doc))
	return nil
}

func cmdPublish(args []string) error {
	fs := flag.NewFlagSet("publish", flag.ContinueOnError)
	out := fs.String("o", "site", "output directory")
	mode := fs.String("mode", "multi", "presentation mode: single or multi")
	focus := fs.String("focus", "", "restrict to one fact class id (Fig. 5)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: goldweb publish [-o dir] [-mode single|multi] [-focus id] <model.xml>")
	}
	_, doc, err := loadModelFile(fs.Arg(0))
	if err != nil {
		return err
	}
	opts := htmlgen.Options{Focus: *focus}
	switch *mode {
	case "single":
		opts.Mode = htmlgen.SinglePage
	case "multi":
		opts.Mode = htmlgen.MultiPage
	default:
		return fmt.Errorf("bad -mode %q", *mode)
	}
	site, err := htmlgen.PublishDocument(doc, opts)
	if err != nil {
		return err
	}
	if errs := htmlgen.CheckLinks(site); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "link:", e)
		}
		return fmt.Errorf("%d broken links", len(errs))
	}
	if err := site.WriteTo(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d pages to %s (%s)\n", len(site.Pages), *out, opts.Mode)
	for _, name := range site.Order {
		fmt.Println("  " + filepath.Join(*out, name))
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	timeout := fs.Duration("timeout", server.DefaultRequestTimeout, "per-request timeout (0 disables)")
	maxInflight := fs.Int("max-inflight", server.DefaultMaxInflight, "max concurrent requests; excess sheds with 503 (0 disables)")
	cacheSize := fs.Int("cache-size", server.DefaultCacheSize, "max cached presentations (LRU)")
	cacheBytes := fs.Int64("cache-bytes", server.DefaultCacheBytes, "presentation cache byte budget (LRU; negative disables)")
	compress := fs.Bool("compress", true, "serve precompressed gzip variants to Accept-Encoding clients")
	lintPolicy := fs.String("lint", "warn", "pre-serve static analysis: strict (errors refuse to start), warn, off")
	catalogDir := fs.String("catalog", "", "serve every *.xml in this directory as /m/{name}/ (multi-model mode)")
	retry := fs.Bool("retry", true, "catalog mode: retry failing model reloads in the background with exponential backoff")
	breakerThreshold := fs.Int("breaker-threshold", catalog.DefaultBreakerThreshold, "catalog mode: consecutive reload failures that open a model's circuit breaker (negative disables)")
	schemaPath := fs.String("schema", "", "validate and lint models against this schema (with its include/import graph) instead of the embedded GOLD schema")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var schema *xsd.Schema
	if *schemaPath != "" {
		var err error
		schema, err = xsd.LoadSchemaFile(*schemaPath)
		if err != nil {
			return fmt.Errorf("loading -schema: %w", err)
		}
	}
	if *catalogDir != "" {
		if fs.NArg() != 0 {
			return fmt.Errorf("serve: -catalog and a model file are mutually exclusive")
		}
		return serveCatalog(*catalogDir, *addr, catalog.Options{
			Lint:             catalog.LintPolicy(*lintPolicy),
			Schema:           schema,
			BreakerThreshold: *breakerThreshold,
			DisableRetry:     !*retry,
			RequestTimeout:   *timeout,
			MaxInflight:      *maxInflight,
			CacheSize:        *cacheSize,
			CacheBytes:       *cacheBytes,
			NoCompress:       !*compress,
		})
	}
	var m *core.Model
	var err error
	var lintName string
	var lintSrc []byte
	if fs.NArg() == 0 {
		m = core.SampleSales()
		lintName, lintSrc = "sample:sales.xml", []byte(m.XMLString())
	} else {
		lintName = fs.Arg(0)
		lintSrc, err = os.ReadFile(lintName)
		if err != nil {
			return err
		}
		m, _, err = loadModelFile(fs.Arg(0))
		if err != nil {
			if schema != nil {
				// The publication pipeline renders GOLD models; a custom
				// -schema can refine that vocabulary but not replace it.
				return fmt.Errorf("serve publishes goldmodel documents (use validate/lint -schema for other vocabularies): %w", err)
			}
			return err
		}
	}
	if err := lintGate(*lintPolicy, lintName, lintSrc, schema); err != nil {
		return err
	}
	srv := server.New(m,
		server.WithRequestTimeout(*timeout),
		server.WithMaxInflight(*maxInflight),
		server.WithCacheSize(*cacheSize),
		server.WithCacheBytes(*cacheBytes),
		server.WithCompression(*compress))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("serving %q on %s (site at /site/index.html, health at /healthz)\n", m.Name, *addr)
	return srv.Serve(ctx, *addr)
}

// serveCatalog runs the resilient multi-model surface: every model in
// dir goes through the staged swap pipeline, a failing model keeps
// serving its last-good site (marked stale) while the background
// reloader retries under the circuit breaker, and lifecycle events
// stream to stdout.
func serveCatalog(dir, addr string, opts catalog.Options) error {
	switch opts.Lint {
	case catalog.LintStrict, catalog.LintWarn, catalog.LintOff:
	default:
		return fmt.Errorf("bad -lint %q (want strict, warn or off)", opts.Lint)
	}
	names, err := catalog.DirModels(dir)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("serve: no *.xml models in %s", dir)
	}
	opts.Loader = catalog.DirLoader(dir)
	opts.OnEvent = printCatalogEvent
	c := catalog.New(opts)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for _, name := range names {
		if err := c.Add(ctx, name); err != nil {
			fmt.Printf("model %s: first load failed: %v (serving 503 until a retry succeeds)\n", name, err)
		}
	}
	fmt.Printf("serving %d models on %s (index at /catalog, health at /readyz, models at /m/{name}/)\n", len(names), addr)
	return c.Serve(ctx, addr)
}

func printCatalogEvent(ev catalog.Event) {
	switch ev.Type {
	case catalog.EventSwapCommitted:
		fmt.Printf("model %s: generation %d live\n", ev.Model, ev.Gen)
	case catalog.EventStageFailed:
		fmt.Printf("model %s: stage %s failed (attempt %d): %v\n", ev.Model, ev.Stage, ev.Attempt, ev.Err)
	case catalog.EventRetryScheduled:
		fmt.Printf("model %s: retry %d in %s\n", ev.Model, ev.Attempt, ev.Delay.Round(time.Millisecond))
	case catalog.EventBreakerOpened:
		fmt.Printf("model %s: circuit breaker open\n", ev.Model)
	case catalog.EventBreakerClosed:
		fmt.Printf("model %s: circuit breaker closed\n", ev.Model)
	case catalog.EventLintFindings:
		fmt.Printf("model %s: lint: %v\n", ev.Model, ev.Err)
	}
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	style := fs.String("style", "star", "relational layout: star or snowflake")
	prefix := fs.String("prefix", "", "table name prefix")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: goldweb export [-style star|snowflake] <model.xml>")
	}
	m, _, err := loadModelFile(fs.Arg(0))
	if err != nil {
		return err
	}
	opts := star.Options{Prefix: *prefix}
	switch *style {
	case "star":
		opts.Style = star.Star
	case "snowflake":
		opts.Style = star.Snowflake
	default:
		return fmt.Errorf("bad -style %q", *style)
	}
	e, err := star.Generate(m, opts)
	if err != nil {
		return err
	}
	fmt.Print(e.DDL())
	return nil
}

func cmdSchemaTree(args []string) error {
	fs := flag.NewFlagSet("schema-tree", flag.ContinueOnError)
	attrs := fs.Bool("attrs", false, "show attributes")
	file := fs.String("f", "", "render this schema file instead of the canonical one")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s := core.MustSchema()
	if *file != "" {
		var err error
		s, err = xsd.LoadSchemaFile(*file)
		if err != nil {
			return err
		}
	}
	fmt.Print(xsd.Tree(s, xsd.TreeOptions{ShowAttributes: *attrs}))
	return nil
}

func cmdCheckSchema(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: goldweb check-schema <schema.xsd>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	issues := xsd.CheckSchemaString(string(data))
	if len(issues) == 0 {
		fmt.Println("schema is clean")
		return nil
	}
	errors := 0
	for _, i := range issues {
		fmt.Println(i)
		if i.Severity == "error" {
			errors++
		}
	}
	if errors > 0 {
		return fmt.Errorf("%d errors", errors)
	}
	return nil
}

func cmdTransform(args []string) error {
	fs := flag.NewFlagSet("transform", flag.ContinueOnError)
	out := fs.String("o", "", "output directory for xsl:document results (default: discard extra documents)")
	var params paramList
	fs.Var(&params, "param", "stylesheet parameter name=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: goldweb transform [-param k=v] [-o dir] <doc.xml> <sheet.xsl>")
	}
	docData, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	doc, err := xmldom.Parse(docData)
	if err != nil {
		return err
	}
	sheetData, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	baseDir := filepath.Dir(fs.Arg(1))
	loader := func(href string) (*xmldom.Node, error) {
		data, err := os.ReadFile(filepath.Join(baseDir, href))
		if err != nil {
			return nil, err
		}
		return xmldom.Parse(data)
	}
	sheet, err := xslt.CompileStylesheetString(string(sheetData), xslt.CompileOptions{Loader: loader})
	if err != nil {
		return err
	}
	p := map[string]xpath.Value{}
	for _, kv := range params {
		i := strings.IndexByte(kv, '=')
		if i < 0 {
			return fmt.Errorf("bad -param %q (want name=value)", kv)
		}
		p[kv[:i]] = xpath.String(kv[i+1:])
	}
	res, err := sheet.Transform(doc, p)
	if err != nil {
		return err
	}
	for _, msg := range res.Messages {
		fmt.Fprintln(os.Stderr, "xsl:message:", msg)
	}
	os.Stdout.Write(res.MainBytes())
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
		for _, href := range res.DocumentOrder {
			path := filepath.Join(*out, filepath.Clean(href))
			if err := os.WriteFile(path, res.DocBytes(href), 0o644); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "wrote", path)
		}
	} else if len(res.DocumentOrder) > 0 {
		fmt.Fprintf(os.Stderr, "note: %d xsl:document outputs discarded (use -o dir)\n", len(res.DocumentOrder))
	}
	return nil
}

// paramList implements flag.Value for repeated -param flags.
type paramList []string

func (p *paramList) String() string { return strings.Join(*p, ",") }
func (p *paramList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func cmdCWM(args []string) error {
	var m *core.Model
	var err error
	if len(args) == 0 {
		m = core.SampleSales()
	} else {
		m, _, err = loadModelFile(args[0])
		if err != nil {
			return err
		}
	}
	fmt.Print(cwm.ExportString(m))
	return nil
}
