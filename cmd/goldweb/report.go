package main

import (
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"goldweb/internal/core"
	"goldweb/internal/htmlgen"
	"goldweb/internal/workload"
	"goldweb/internal/xsd"
)

// cmdReport regenerates the evaluation series of EXPERIMENTS.md in one
// run: the Fig. 5/6 page inventories and the scaling sweeps for
// validation and publication.
func cmdReport(args []string) error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)

	fmt.Fprintln(w, "== Fig. 6: multi-page site of the sales model ==")
	sales := core.SampleSales()
	site, err := htmlgen.Publish(sales, htmlgen.Options{Mode: htmlgen.MultiPage})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pages\t%d\n", len(site.HTMLPages()))
	for _, p := range site.HTMLPages() {
		fmt.Fprintf(w, "\t%s\t%d bytes\n", p, len(site.Page(p)))
	}
	if errs := htmlgen.CheckLinks(site); len(errs) == 0 {
		fmt.Fprintln(w, "link integrity\tOK")
	} else {
		fmt.Fprintf(w, "link integrity\t%d broken\n", len(errs))
	}

	fmt.Fprintln(w, "\n== Fig. 5: per-fact presentations of the hospital model ==")
	hospital := core.SampleHospital()
	fmt.Fprintln(w, "presentation\tpages\thidden dimensions")
	for _, f := range hospital.Facts {
		s, err := htmlgen.Publish(hospital, htmlgen.Options{Mode: htmlgen.MultiPage, Focus: f.ID})
		if err != nil {
			return err
		}
		hidden := 0
		for _, d := range hospital.Dims {
			if s.Page(d.ID+".html") == nil {
				hidden++
			}
		}
		fmt.Fprintf(w, "focus=%s\t%d\t%d\n", f.Name, len(s.HTMLPages()), hidden)
	}
	full, err := htmlgen.Publish(hospital, htmlgen.Options{Mode: htmlgen.MultiPage})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "unfocused\t%d\t0\n", len(full.HTMLPages()))

	fmt.Fprintln(w, "\n== §3.2: validation cost vs model size ==")
	fmt.Fprintln(w, "model\telements\ttime")
	schema := core.MustSchema()
	for _, spec := range []workload.ModelSpec{
		{Facts: 1, Dims: 2, Depth: 1},
		{Facts: 2, Dims: 4, Depth: 2},
		{Facts: 4, Dims: 8, Depth: 2},
		{Facts: 8, Dims: 16, Depth: 3},
	} {
		doc := workload.GenModel(spec).ToXML()
		start := time.Now()
		const reps = 5
		for i := 0; i < reps; i++ {
			if errs := schema.Validate(doc, xsd.ValidateOptions{}); len(errs) != 0 {
				return fmt.Errorf("unexpected invalid model %s: %v", spec, errs[0])
			}
		}
		fmt.Fprintf(w, "%s\t%d\t%v\n", spec, len(doc.DescendantElements("")),
			time.Since(start)/reps)
	}

	fmt.Fprintln(w, "\n== §4: single page (XSLT 1.0) vs linked pages (XSLT 1.1) ==")
	fmt.Fprintln(w, "model\tmode\tpages\tbytes\ttime")
	for _, spec := range []workload.ModelSpec{
		{Facts: 1, Dims: 2, Depth: 1},
		{Facts: 2, Dims: 4, Depth: 2},
		{Facts: 4, Dims: 8, Depth: 2},
	} {
		m := workload.GenModel(spec)
		for _, mode := range []htmlgen.Mode{htmlgen.SinglePage, htmlgen.MultiPage} {
			start := time.Now()
			s, err := htmlgen.Publish(m, htmlgen.Options{Mode: mode})
			if err != nil {
				return err
			}
			bytes := 0
			for _, p := range s.Pages {
				bytes += len(p)
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%v\n", spec, mode,
				len(s.HTMLPages()), bytes, time.Since(start))
		}
	}
	return w.Flush()
}
