package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goldweb/internal/core"
)

// withFile writes content into a temp file and returns its path.
func withFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture redirects stdout while fn runs and returns what was printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 0, 1<<16)
	tmp := make([]byte, 4096)
	for {
		n, rerr := r.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if rerr != nil {
			break
		}
	}
	return string(buf), ferr
}

func TestCmdValidateAcceptsSample(t *testing.T) {
	path := withFile(t, "m.xml", core.SampleSales().XMLString())
	out, err := capture(t, func() error { return cmdValidate([]string{path}) })
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !strings.Contains(out, "VALID: Sales DW") {
		t.Errorf("out: %s", out)
	}
}

func TestCmdValidateRejectsBroken(t *testing.T) {
	bad := strings.Replace(core.SampleSales().XMLString(), `dimclass="d1"`, `dimclass="zz"`, 1)
	path := withFile(t, "bad.xml", bad)
	out, err := capture(t, func() error { return cmdValidate([]string{path}) })
	if err == nil {
		t.Fatal("broken model accepted")
	}
	if !strings.Contains(out, "zz") {
		t.Errorf("culprit missing: %s", out)
	}
}

func TestCmdValidateUsageAndMissingFile(t *testing.T) {
	if err := cmdValidate(nil); err == nil {
		t.Error("no-arg should fail")
	}
	if err := cmdValidate([]string{"/nonexistent/x.xml"}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestCmdPublishWritesSite(t *testing.T) {
	model := withFile(t, "m.xml", core.SampleSales().XMLString())
	out := filepath.Join(t.TempDir(), "site")
	if _, err := capture(t, func() error {
		return cmdPublish([]string{"-o", out, model})
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(out, "index.html"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Sales DW") {
		t.Error("index incomplete")
	}
	// Single mode produces just the index (plus css).
	out2 := filepath.Join(t.TempDir(), "single")
	if _, err := capture(t, func() error {
		return cmdPublish([]string{"-o", out2, "-mode", "single", model})
	}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(out2)
	htmlCount := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".html") {
			htmlCount++
		}
	}
	if htmlCount != 1 {
		t.Errorf("single mode wrote %d html files", htmlCount)
	}
	// Bad mode errors.
	if _, err := capture(t, func() error {
		return cmdPublish([]string{"-mode", "triple", model})
	}); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestCmdPublishFocus(t *testing.T) {
	m := core.SampleHospital()
	model := withFile(t, "h.xml", m.XMLString())
	out := filepath.Join(t.TempDir(), "site")
	if _, err := capture(t, func() error {
		return cmdPublish([]string{"-o", out, "-focus", m.Facts[1].ID, model})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, m.Facts[0].ID+".html")); err == nil {
		t.Error("focused publish included the other fact class")
	}
}

func TestCmdExportStyles(t *testing.T) {
	model := withFile(t, "m.xml", core.SampleSales().XMLString())
	out, err := capture(t, func() error { return cmdExport([]string{model}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CREATE TABLE fact_sales (") {
		t.Errorf("star ddl: %.120s", out)
	}
	out, err = capture(t, func() error { return cmdExport([]string{"-style", "snowflake", model}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "dim_time_month") {
		t.Errorf("snowflake ddl: %.120s", out)
	}
	if _, err := capture(t, func() error { return cmdExport([]string{"-style", "hexagon", model}) }); err == nil {
		t.Error("bad style accepted")
	}
}

func TestCmdSchemaTree(t *testing.T) {
	out, err := capture(t, func() error { return cmdSchemaTree(nil) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "goldmodel\n") {
		t.Errorf("tree: %.80s", out)
	}
	out, err = capture(t, func() error { return cmdSchemaTree([]string{"-attrs"}) })
	if err != nil || !strings.Contains(out, "@id : xsd:ID (required)") {
		t.Errorf("attrs tree: %v %.80s", err, out)
	}
}

func TestCmdCheckSchema(t *testing.T) {
	good := withFile(t, "s.xsd", `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
		<xsd:element name="e" type="xsd:string"/></xsd:schema>`)
	out, err := capture(t, func() error { return cmdCheckSchema([]string{good}) })
	if err != nil || !strings.Contains(out, "clean") {
		t.Errorf("good schema: %v %s", err, out)
	}
	bad := withFile(t, "b.xsd", `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
		<xsd:element name="e" type="Nope"/></xsd:schema>`)
	out, err = capture(t, func() error { return cmdCheckSchema([]string{bad}) })
	if err == nil {
		t.Error("bad schema passed")
	}
	if !strings.Contains(out, "Nope") {
		t.Errorf("culprit missing: %s", out)
	}
}

func TestCmdTransform(t *testing.T) {
	doc := withFile(t, "d.xml", `<r><v>7</v></r>`)
	sheet := withFile(t, "s.xsl", `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
		<xsl:output method="text"/>
		<xsl:param name="prefix" select="'value: '"/>
		<xsl:template match="/"><xsl:value-of select="$prefix"/><xsl:value-of select="//v"/></xsl:template>
	</xsl:stylesheet>`)
	out, err := capture(t, func() error { return cmdTransform([]string{doc, sheet}) })
	if err != nil {
		t.Fatal(err)
	}
	if out != "value: 7" {
		t.Errorf("transform out = %q", out)
	}
	out, err = capture(t, func() error {
		return cmdTransform([]string{"-param", "prefix=p:", doc, sheet})
	})
	if err != nil || out != "p:7" {
		t.Errorf("param transform = %q (%v)", out, err)
	}
	if _, err := capture(t, func() error {
		return cmdTransform([]string{"-param", "nonsense", doc, sheet})
	}); err == nil {
		t.Error("malformed -param accepted")
	}
}

func TestCmdTransformMultiOutput(t *testing.T) {
	doc := withFile(t, "d.xml", `<r><i n="a"/><i n="b"/></r>`)
	sheet := withFile(t, "s.xsl", `<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.1">
		<xsl:template match="/"><main><xsl:for-each select="//i">
			<xsl:document href="{@n}.xml"><item><xsl:value-of select="@n"/></item></xsl:document>
		</xsl:for-each></main></xsl:template>
	</xsl:stylesheet>`)
	outDir := filepath.Join(t.TempDir(), "docs")
	if _, err := capture(t, func() error {
		return cmdTransform([]string{"-o", outDir, doc, sheet})
	}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a.xml", "b.xml"} {
		data, err := os.ReadFile(filepath.Join(outDir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(string(data), "<item>") {
			t.Errorf("%s content: %s", name, data)
		}
	}
}

func TestCmdSampleAndPretty(t *testing.T) {
	out, err := capture(t, func() error { return cmdSample([]string{"hospital"}) })
	if err != nil || !strings.Contains(out, `name="Hospital DW"`) {
		t.Errorf("sample: %v", err)
	}
	if _, err := capture(t, func() error { return cmdSample([]string{"zoo"}) }); err == nil {
		t.Error("unknown sample accepted")
	}
	path := withFile(t, "m.xml", core.SampleSales().XMLString())
	out, err = capture(t, func() error { return cmdPretty([]string{path}) })
	if err != nil || !strings.Contains(out, "\n  <factclasses>") {
		t.Errorf("pretty: %v", err)
	}
}

func TestCmdReport(t *testing.T) {
	out, err := capture(t, func() error { return cmdReport(nil) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Fig. 6", "link integrity", "Fig. 5", "focus=Treatments",
		"validation cost", "single-page", "multi-page",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestCmdCWM(t *testing.T) {
	out, err := capture(t, func() error { return cmdCWM(nil) })
	if err != nil || !strings.Contains(out, "<CWMOLAP:Schema") {
		t.Errorf("cwm default: %v", err)
	}
	path := withFile(t, "h.xml", core.SampleHospital().XMLString())
	out, err = capture(t, func() error { return cmdCWM([]string{path}) })
	if err != nil || !strings.Contains(out, `name="Hospital DW"`) {
		t.Errorf("cwm file: %v", err)
	}
}

func TestCmdValidateDTDMode(t *testing.T) {
	// The DTD (the paper's previous proposal) accepts a bad date the
	// schema rejects.
	bad := strings.Replace(core.SampleSales().XMLString(),
		`creationdate="2002-03-24"`, `creationdate="someday"`, 1)
	path := withFile(t, "bad.xml", bad)
	out, err := capture(t, func() error { return cmdValidate([]string{"-dtd", path}) })
	if err != nil {
		t.Fatalf("DTD mode should accept: %v (%s)", err, out)
	}
	if !strings.Contains(out, "VALID (DTD only") {
		t.Errorf("out: %s", out)
	}
	if err := cmdValidate([]string{path}); err == nil {
		t.Error("schema mode should reject the bad date")
	}
	// Structural breakage still fails under the DTD.
	broken := strings.Replace(core.SampleSales().XMLString(), `<factclasses>`, `<factclasses><rogue/>`, 1)
	path2 := withFile(t, "broken.xml", broken)
	if _, err := capture(t, func() error { return cmdValidate([]string{"-dtd", path2}) }); err == nil {
		t.Error("DTD mode should reject undeclared elements")
	}
}

func TestCmdLintBuiltinsClean(t *testing.T) {
	out, err := capture(t, func() error { return cmdLint(nil) })
	if err != nil {
		t.Fatalf("built-in corpus must lint clean: %v (%s)", err, out)
	}
	if !strings.Contains(out, "ok: no findings") {
		t.Errorf("out: %s", out)
	}
}

func TestCmdLintFlagsBrokenStylesheet(t *testing.T) {
	path := withFile(t, "bad.xsl", `<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:template match="widget"/>
</xsl:stylesheet>`)
	out, err := capture(t, func() error { return cmdLint([]string{path}) })
	if err == nil {
		t.Fatal("error-severity finding must make lint fail")
	}
	if !strings.Contains(out, "GW101") || !strings.Contains(out, "widget") {
		t.Errorf("out: %s", out)
	}
	// JSON mode emits a machine-readable array with positions.
	out, err = capture(t, func() error { return cmdLint([]string{"-json", path}) })
	if err == nil {
		t.Fatal("JSON mode must still fail on errors")
	}
	if !strings.Contains(out, `"code": "GW101"`) || !strings.Contains(out, `"line": 3`) {
		t.Errorf("json out: %s", out)
	}
}

func TestCmdLintVerifySummary(t *testing.T) {
	out, err := capture(t, func() error { return cmdLint([]string{"-verify"}) })
	if err != nil {
		t.Fatalf("lint -verify on builtins: %v (%s)", err, out)
	}
	for _, want := range []string{
		"verify: builtin:single.xsl:",
		"verify: builtin:multi.xsl:",
		"expressions verified — ok",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestCmdLintJSONDeterministic(t *testing.T) {
	// A stylesheet with findings across several codes and positions: the
	// JSON artifact must be byte-identical across runs.
	path := withFile(t, "noisy.xsl", `<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:output method="html"/>
  <xsl:template match="goldmodel">
    <xsl:variable name="dead" select="@name"/>
    <img src="x.png">caption</img>
    <div>text<xsl:attribute name="id">v</xsl:attribute></div>
  </xsl:template>
  <xsl:template name="unused"><x/></xsl:template>
</xsl:stylesheet>`)
	first, err := capture(t, func() error { return cmdLint([]string{"-json", path}) })
	if err != nil {
		t.Fatalf("warnings must not fail lint: %v (%s)", err, first)
	}
	for _, code := range []string{"GW203", "GW202", "GW502", "GW504"} {
		if !strings.Contains(first, `"code": "`+code+`"`) {
			t.Errorf("missing %s in json output:\n%s", code, first)
		}
	}
	for i := 0; i < 3; i++ {
		again, err := capture(t, func() error { return cmdLint([]string{"-json", path}) })
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("lint -json output is not deterministic:\n--- first ---\n%s\n--- again ---\n%s", first, again)
		}
	}
}

func TestCmdLintWalksDirectories(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "m.xml"), []byte(core.SampleSales().XMLString()), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return cmdLint([]string{dir}) })
	if err != nil {
		t.Fatalf("clean dir: %v (%s)", err, out)
	}
	if err := cmdLint([]string{filepath.Join(dir, "missing")}); err == nil {
		t.Error("missing path should fail")
	}
}

func TestLintGatePolicies(t *testing.T) {
	broken := []byte(strings.Replace(core.SampleSales().XMLString(), `dimclass="d1"`, `dimclass="zz"`, 1))
	if err := lintGate("strict", "bad.xml", broken, nil); err == nil {
		t.Error("strict must refuse a broken model")
	}
	if err := lintGate("warn", "bad.xml", broken, nil); err != nil {
		t.Errorf("warn must continue: %v", err)
	}
	if err := lintGate("off", "bad.xml", broken, nil); err != nil {
		t.Errorf("off must skip: %v", err)
	}
	if err := lintGate("bogus", "bad.xml", broken, nil); err == nil {
		t.Error("unknown policy must fail")
	}
}

func TestCmdServeCatalogArgValidation(t *testing.T) {
	dir := t.TempDir()
	// -catalog plus a positional model file is a contradiction.
	_, err := capture(t, func() error {
		return cmdServe([]string{"-catalog", dir, "model.xml"})
	})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("want mutually-exclusive error, got %v", err)
	}
	// An empty catalog directory refuses to start.
	_, err = capture(t, func() error {
		return cmdServe([]string{"-catalog", dir})
	})
	if err == nil || !strings.Contains(err.Error(), "no *.xml models") {
		t.Errorf("want empty-dir error, got %v", err)
	}
	// A bad -lint policy is rejected before any model loads.
	if err := os.WriteFile(filepath.Join(dir, "m.xml"), []byte(core.SampleSales().XMLString()), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = capture(t, func() error {
		return cmdServe([]string{"-catalog", dir, "-lint", "bogus"})
	})
	if err == nil || !strings.Contains(err.Error(), "bad -lint") {
		t.Errorf("want bad-lint error, got %v", err)
	}
	// A missing catalog directory reports the underlying error.
	_, err = capture(t, func() error {
		return cmdServe([]string{"-catalog", filepath.Join(dir, "nope")})
	})
	if err == nil {
		t.Error("want error for missing directory")
	}
}
