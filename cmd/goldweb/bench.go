package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"goldweb/internal/analysis"
	"goldweb/internal/catalog"
	"goldweb/internal/core"
	"goldweb/internal/htmlgen"
	"goldweb/internal/workload"
	"goldweb/internal/xpath"
	"goldweb/internal/xsd"
)

// benchCase is one measured pipeline stage.
type benchCase struct {
	Name string
	Run  func(b *testing.B)
}

// benchResult is the JSON record for one case.
type benchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchReport is the top-level JSON document.
type benchReport struct {
	Generated string        `json:"generated"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Cases     []benchResult `json:"cases"`
}

// benchCases covers the three pipelines the evaluation tracks: the XSLT
// transformation (single and multi page), the publication fan-out, and
// schema validation with identity constraints.
func benchCases() []benchCase {
	var cases []benchCase
	for _, spec := range []workload.ModelSpec{
		{Facts: 2, Dims: 4, Depth: 2},
		{Facts: 4, Dims: 8, Depth: 2},
	} {
		m := workload.GenModel(spec)
		for _, mode := range []htmlgen.Mode{htmlgen.SinglePage, htmlgen.MultiPage} {
			mode, m, spec := mode, m, spec
			cases = append(cases, benchCase{
				Name: fmt.Sprintf("publish/%s/%s", mode, spec),
				Run: func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := htmlgen.Publish(m, htmlgen.Options{Mode: mode}); err != nil {
							b.Fatal(err)
						}
					}
				},
			})
		}
	}
	schema := core.MustSchema()
	for _, spec := range []workload.ModelSpec{
		{Facts: 4, Dims: 8, Depth: 2},
		{Facts: 8, Dims: 16, Depth: 3},
	} {
		doc := workload.GenModel(spec).ToXML()
		spec := spec
		cases = append(cases, benchCase{
			Name: "validate/" + spec.String(),
			Run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if errs := schema.Validate(doc, xsd.ValidateOptions{}); len(errs) != 0 {
						b.Fatal(errs[0])
					}
				}
			},
		})
	}
	// Structure-only validation isolates the identity-constraint cost:
	// the delta against the full validate case above is the key/keyref
	// tuple collection the compiled selector/field IR performs.
	{
		doc := workload.GenModel(workload.ModelSpec{Facts: 8, Dims: 16, Depth: 3}).ToXML()
		cases = append(cases, benchCase{
			Name: "validate/structure-only/f8d16h3",
			Run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if errs := schema.Validate(doc, xsd.ValidateOptions{SkipIdentityConstraints: true}); len(errs) != 0 {
						b.Fatal(errs[0])
					}
				}
			},
		})
	}
	// Compiled-vs-reference expression microbenches: the same XPath run
	// through the planned IR evaluator and through the legacy AST
	// interpreter it is differentially pinned against. The document is
	// frozen so the planner's indexed descendant scans apply.
	xdoc := workload.GenModel(workload.ModelSpec{Facts: 4, Dims: 8, Depth: 2}).ToXML()
	xdoc.Freeze()
	for _, src := range []string{
		"//dimclass",
		"goldmodel/dimclasses/dimclass",
		"//dimatt[@id]",
		"count(//dimclass)",
		"dimclasses/dimclass[3]",
	} {
		c, err := xpath.Compile(src)
		if err != nil {
			panic(err)
		}
		c, src := c, src
		cases = append(cases, benchCase{
			Name: "xpath/compiled/" + src,
			Run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ctx := xpath.GetContext()
					ctx.Node, ctx.Position, ctx.Size = xdoc, 1, 1
					if _, err := c.Eval(ctx); err != nil {
						b.Fatal(err)
					}
					xpath.PutContext(ctx)
				}
			},
		})
		cases = append(cases, benchCase{
			Name: "xpath/reference/" + src,
			Run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ctx := xpath.GetContext()
					ctx.Node, ctx.Position, ctx.Size = xdoc, 1, 1
					if _, err := c.EvalReference(ctx); err != nil {
						b.Fatal(err)
					}
					xpath.PutContext(ctx)
				}
			},
		})
	}
	// Bytecode-vs-tree: the same multi-page presentation transform run
	// through the lowered stylesheet program on the shared XPath VM and
	// through the tree-walking engine it is differentially pinned
	// against. The delta is the dispatch + literal-segment win.
	{
		sheet, err := core.MultiPageStylesheet()
		if err != nil {
			panic(err)
		}
		tdoc := workload.GenModel(workload.ModelSpec{Facts: 4, Dims: 8, Depth: 2}).ToXML()
		tdoc.Freeze()
		tparams := map[string]xpath.Value{
			"focus": xpath.String(""),
			"css":   xpath.String("style.css"),
		}
		cases = append(cases, benchCase{
			Name: "xslt/bytecode-vs-tree/bytecode/f4d8h2",
			Run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := sheet.TransformToBuffers(tdoc, tparams); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
		cases = append(cases, benchCase{
			Name: "xslt/bytecode-vs-tree/tree/f4d8h2",
			Run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := sheet.TransformToBuffersReference(tdoc, tparams); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
	}
	// Catalog hot-swap latency: one Set call runs the whole staged
	// pipeline — parse, xsd-validate, lint gate, shadow publish, atomic
	// generation bump — so this is the time a model is in transition.
	{
		data := []byte(workload.GenModel(workload.ModelSpec{Facts: 2, Dims: 4, Depth: 2}).XMLString())
		cases = append(cases, benchCase{
			Name: "catalog/swap-latency/f2d4h2",
			Run: func(b *testing.B) {
				cat := catalog.New(catalog.Options{
					Loader: func(ctx context.Context, name string) ([]byte, error) {
						return data, nil
					},
					DisableRetry: true,
				})
				defer cat.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := cat.Set(context.Background(), "bench", data); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
	}
	// The static analyzer runs over both built-in stylesheets plus the
	// sales sample — the same work `goldweb lint` does with no args.
	singleSrc := []byte(core.SingleXSL)
	multiSrc := []byte(core.MultiXSL)
	salesSrc := []byte(core.SampleSales().XMLString())
	cases = append(cases, benchCase{
		Name: "lint/builtins",
		Run: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := len(analysis.LintStylesheet("single.xsl", singleSrc, schema)) +
					len(analysis.LintStylesheet("multi.xsl", multiSrc, schema)) +
					len(analysis.LintModelSource("sales.xml", salesSrc, schema))
				if n != 0 {
					b.Fatalf("%d findings on the clean corpus", n)
				}
			}
		},
	})
	return cases
}

// cmdBench measures the evaluation pipelines with testing.Benchmark and
// prints (or writes) a JSON report — the machine-readable counterpart of
// EXPERIMENTS.md, regenerated per release and diffed in CI.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	outPath := fs.String("o", "", "write the report to a file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	report := benchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, c := range benchCases() {
		r := testing.Benchmark(c.Run)
		report.Cases = append(report.Cases, benchResult{
			Name:        c.Name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		if !*jsonOut && *outPath == "" {
			fmt.Printf("%-28s %12.0f ns/op %10d B/op %8d allocs/op\n",
				c.Name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
		}
	}
	if !*jsonOut && *outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath != "" {
		return os.WriteFile(*outPath, data, 0o644)
	}
	_, err = os.Stdout.Write(data)
	return err
}
