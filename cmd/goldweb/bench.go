package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"goldweb/internal/analysis"
	"goldweb/internal/artifact"
	"goldweb/internal/catalog"
	"goldweb/internal/core"
	"goldweb/internal/htmlgen"
	"goldweb/internal/workload"
	"goldweb/internal/xmldom"
	"goldweb/internal/xpath"
	"goldweb/internal/xsd"
)

// benchCase is one measured pipeline stage.
type benchCase struct {
	Name string
	Run  func(b *testing.B)
}

// benchResult is the JSON record for one case.
type benchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchReport is the top-level JSON document.
type benchReport struct {
	Generated string        `json:"generated"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Cases     []benchResult `json:"cases"`
	Load      []loadCase    `json:"load,omitempty"`
}

// loadCase is one sustained-load scenario and its report.
type loadCase struct {
	Name string `json:"name"`
	workload.LoadReport
}

// nullSink is the measurement ResponseWriter for the serve microbenches:
// header map reused across ops, body discarded, so AllocsPerOp isolates
// the artifact serving path itself.
type nullSink struct{ h http.Header }

func (s *nullSink) Header() http.Header         { return s.h }
func (s *nullSink) Write(p []byte) (int, error) { return len(p), nil }
func (s *nullSink) WriteHeader(int)             {}

// benchCases covers the three pipelines the evaluation tracks: the XSLT
// transformation (single and multi page), the publication fan-out, and
// schema validation with identity constraints.
func benchCases() []benchCase {
	var cases []benchCase
	for _, spec := range []workload.ModelSpec{
		{Facts: 2, Dims: 4, Depth: 2},
		{Facts: 4, Dims: 8, Depth: 2},
	} {
		m := workload.GenModel(spec)
		for _, mode := range []htmlgen.Mode{htmlgen.SinglePage, htmlgen.MultiPage} {
			mode, m, spec := mode, m, spec
			cases = append(cases, benchCase{
				Name: fmt.Sprintf("publish/%s/%s", mode, spec),
				Run: func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := htmlgen.Publish(m, htmlgen.Options{Mode: mode}); err != nil {
							b.Fatal(err)
						}
					}
				},
			})
		}
	}
	schema := core.MustSchema()
	for _, spec := range []workload.ModelSpec{
		{Facts: 4, Dims: 8, Depth: 2},
		{Facts: 8, Dims: 16, Depth: 3},
	} {
		doc := workload.GenModel(spec).ToXML()
		spec := spec
		cases = append(cases, benchCase{
			Name: "validate/" + spec.String(),
			Run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if errs := schema.Validate(doc, xsd.ValidateOptions{}); len(errs) != 0 {
						b.Fatal(errs[0])
					}
				}
			},
		})
	}
	// Structure-only validation isolates the identity-constraint cost:
	// the delta against the full validate case above is the key/keyref
	// tuple collection the compiled selector/field IR performs.
	{
		doc := workload.GenModel(workload.ModelSpec{Facts: 8, Dims: 16, Depth: 3}).ToXML()
		cases = append(cases, benchCase{
			Name: "validate/structure-only/f8d16h3",
			Run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if errs := schema.Validate(doc, xsd.ValidateOptions{SkipIdentityConstraints: true}); len(errs) != 0 {
						b.Fatal(errs[0])
					}
				}
			},
		})
	}
	// General-schema validation: the frontier constructs (substitution
	// dispatch, wildcard admission, union and list types) on a non-GOLD
	// vocabulary, isolating their cost from the GOLD fast path above.
	{
		gs, err := xsd.ParseSchemaString(generalBenchSchema)
		if err != nil {
			panic(err)
		}
		doc, err := xmldom.ParseString(generalBenchDoc(200))
		if err != nil {
			panic(err)
		}
		cases = append(cases, benchCase{
			Name: "validate/general-schema/n200",
			Run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if errs := gs.Validate(doc, xsd.ValidateOptions{}); len(errs) != 0 {
						b.Fatal(errs[0])
					}
				}
			},
		})
	}
	// Compiled-vs-reference expression microbenches: the same XPath run
	// through the planned IR evaluator and through the legacy AST
	// interpreter it is differentially pinned against. The document is
	// frozen so the planner's indexed descendant scans apply.
	xdoc := workload.GenModel(workload.ModelSpec{Facts: 4, Dims: 8, Depth: 2}).ToXML()
	xdoc.Freeze()
	for _, src := range []string{
		"//dimclass",
		"goldmodel/dimclasses/dimclass",
		"//dimatt[@id]",
		"count(//dimclass)",
		"dimclasses/dimclass[3]",
	} {
		c, err := xpath.Compile(src)
		if err != nil {
			panic(err)
		}
		c, src := c, src
		cases = append(cases, benchCase{
			Name: "xpath/compiled/" + src,
			Run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ctx := xpath.GetContext()
					ctx.Node, ctx.Position, ctx.Size = xdoc, 1, 1
					if _, err := c.Eval(ctx); err != nil {
						b.Fatal(err)
					}
					xpath.PutContext(ctx)
				}
			},
		})
		cases = append(cases, benchCase{
			Name: "xpath/reference/" + src,
			Run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ctx := xpath.GetContext()
					ctx.Node, ctx.Position, ctx.Size = xdoc, 1, 1
					if _, err := c.EvalReference(ctx); err != nil {
						b.Fatal(err)
					}
					xpath.PutContext(ctx)
				}
			},
		})
	}
	// Bytecode-vs-tree: the same multi-page presentation transform run
	// through the lowered stylesheet program on the shared XPath VM and
	// through the tree-walking engine it is differentially pinned
	// against. The delta is the dispatch + literal-segment win.
	{
		sheet, err := core.MultiPageStylesheet()
		if err != nil {
			panic(err)
		}
		tdoc := workload.GenModel(workload.ModelSpec{Facts: 4, Dims: 8, Depth: 2}).ToXML()
		tdoc.Freeze()
		tparams := map[string]xpath.Value{
			"focus": xpath.String(""),
			"css":   xpath.String("style.css"),
		}
		cases = append(cases, benchCase{
			Name: "xslt/bytecode-vs-tree/bytecode/f4d8h2",
			Run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := sheet.TransformToBuffers(tdoc, tparams); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
		cases = append(cases, benchCase{
			Name: "xslt/bytecode-vs-tree/tree/f4d8h2",
			Run: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := sheet.TransformToBuffersReference(tdoc, tparams); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
	}
	// Catalog hot-swap latency: one Set call runs the whole staged
	// pipeline — parse, xsd-validate, lint gate, shadow publish, atomic
	// generation bump — so this is the time a model is in transition.
	{
		data := []byte(workload.GenModel(workload.ModelSpec{Facts: 2, Dims: 4, Depth: 2}).XMLString())
		cases = append(cases, benchCase{
			Name: "catalog/swap-latency/f2d4h2",
			Run: func(b *testing.B) {
				cat := catalog.New(catalog.Options{
					Loader: func(ctx context.Context, name string) ([]byte, error) {
						return data, nil
					},
					DisableRetry: true,
				})
				defer cat.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := cat.Set(context.Background(), "bench", data); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
	}
	// The static analyzer runs over both built-in stylesheets plus the
	// sales sample — the same work `goldweb lint` does with no args.
	singleSrc := []byte(core.SingleXSL)
	multiSrc := []byte(core.MultiXSL)
	salesSrc := []byte(core.SampleSales().XMLString())
	// Edge-serving microbenches: the content-addressed artifact hot
	// path. The warm conditional 304 and the precompressed-variant hit
	// must stay allocation-free — a regression here multiplies across
	// every request of the sustained-load scenarios below.
	{
		site, err := htmlgen.Publish(core.SampleSales(), htmlgen.Options{Mode: htmlgen.MultiPage})
		if err != nil {
			panic(err)
		}
		a := artifact.New("text/html; charset=utf-8", site.Pages[htmlgen.IndexName])
		if a.Gzip() == nil {
			panic("index page has no gzip variant")
		}
		mkReq := func(hdr http.Header) *http.Request {
			return &http.Request{
				Method: http.MethodGet,
				URL:    &url.URL{Path: "/site/index.html"},
				Header: hdr,
			}
		}
		for _, mc := range []struct {
			name string
			req  *http.Request
		}{
			{"serve/identity-full", mkReq(http.Header{})},
			{"serve/conditional-304", mkReq(http.Header{"If-None-Match": {a.ETag()}})},
			{"serve/gzip-hit", mkReq(http.Header{"Accept-Encoding": {"gzip"}})},
		} {
			mc := mc
			cases = append(cases, benchCase{
				Name: mc.name,
				Run: func(b *testing.B) {
					sink := &nullSink{h: make(http.Header, 8)}
					a.Serve(sink, mc.req, true) // warm the header map
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						a.Serve(sink, mc.req, true)
					}
				},
			})
		}
	}
	cases = append(cases, benchCase{
		Name: "lint/builtins",
		Run: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := len(analysis.LintStylesheet("single.xsl", singleSrc, schema)) +
					len(analysis.LintStylesheet("multi.xsl", multiSrc, schema)) +
					len(analysis.LintModelSource("sales.xml", salesSrc, schema))
				if n != 0 {
					b.Fatalf("%d findings on the clean corpus", n)
				}
			}
		},
	})
	return cases
}

// loadCatalogSpecs sizes the 8-model catalog the sustained-load
// scenarios serve: a spread from small to large models, so the request
// mix touches both cheap and expensive pages.
var loadCatalogSpecs = []workload.ModelSpec{
	{Facts: 1, Dims: 2, Depth: 1},
	{Facts: 1, Dims: 4, Depth: 2},
	{Facts: 2, Dims: 4, Depth: 1},
	{Facts: 2, Dims: 4, Depth: 2},
	{Facts: 2, Dims: 6, Depth: 2},
	{Facts: 4, Dims: 6, Depth: 2},
	{Facts: 4, Dims: 8, Depth: 2},
	{Facts: 4, Dims: 8, Depth: 3},
}

// runLoadCases drives the full catalog handler (middleware, routing,
// artifact serving) with the in-process sustained-load harness. Each
// scenario is one client behavior: cold identity fetches, a realistic
// browser mix, and a revalidation-heavy steady state where nearly every
// response should be a 304.
func runLoadCases(total time.Duration) ([]loadCase, error) {
	sources := map[string][]byte{}
	cat := catalog.New(catalog.Options{
		Loader: func(ctx context.Context, name string) ([]byte, error) {
			return sources[name], nil
		},
		DisableRetry: true,
	})
	defer cat.Close()
	var paths []string
	for i, spec := range loadCatalogSpecs {
		name := fmt.Sprintf("m%d", i+1)
		m := workload.GenModel(spec)
		data := []byte(m.XMLString())
		sources[name] = data
		if err := cat.Set(context.Background(), name, data); err != nil {
			return nil, fmt.Errorf("load catalog %s: %w", name, err)
		}
		site, err := htmlgen.Publish(m, htmlgen.Options{Mode: htmlgen.MultiPage})
		if err != nil {
			return nil, err
		}
		for _, page := range site.Order {
			paths = append(paths, "/m/"+name+"/site/"+page)
		}
	}
	h := cat.Handler()
	scenarios := []struct {
		name string
		spec workload.LoadSpec
	}{
		{"load/cold-identity", workload.LoadSpec{Clients: 8, GzipFrac: 0, CondFrac: 0, Seed: 1}},
		{"load/browser-mix", workload.LoadSpec{Clients: 8, GzipFrac: 0.9, CondFrac: 0.6, Seed: 2}},
		{"load/revalidation-heavy", workload.LoadSpec{Clients: 8, GzipFrac: 0.9, CondFrac: 0.97, Seed: 3}},
	}
	per := total / time.Duration(len(scenarios))
	var out []loadCase
	for _, sc := range scenarios {
		sc.spec.Duration = per
		rep, err := workload.RunLoad(context.Background(), h, paths, sc.spec)
		if err != nil {
			return nil, err
		}
		out = append(out, loadCase{Name: sc.name, LoadReport: *rep})
	}
	return out, nil
}

// loadDuration reads the total load-phase budget from
// GOLDWEB_LOAD_DURATION (the CI smoke job sets 10s; default 3s).
func loadDuration() (time.Duration, error) {
	if v := os.Getenv("GOLDWEB_LOAD_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return 0, fmt.Errorf("GOLDWEB_LOAD_DURATION: %w", err)
		}
		return d, nil
	}
	return 3 * time.Second, nil
}

// cmdBench measures the evaluation pipelines with testing.Benchmark and
// prints (or writes) a JSON report — the machine-readable counterpart of
// EXPERIMENTS.md, regenerated per release and diffed in CI.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	outPath := fs.String("o", "", "write the report to a file instead of stdout")
	withLoad := fs.Bool("load", false, "also run the sustained-load edge harness (GOLDWEB_LOAD_DURATION bounds it)")
	loadOnly := fs.Bool("load-only", false, "run only the sustained-load harness, skipping the microbenches")
	if err := fs.Parse(args); err != nil {
		return err
	}
	report := benchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	if !*loadOnly {
		for _, c := range benchCases() {
			r := testing.Benchmark(c.Run)
			report.Cases = append(report.Cases, benchResult{
				Name:        c.Name,
				N:           r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			})
			if !*jsonOut && *outPath == "" {
				fmt.Printf("%-28s %12.0f ns/op %10d B/op %8d allocs/op\n",
					c.Name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
			}
		}
	}
	if *withLoad || *loadOnly {
		total, err := loadDuration()
		if err != nil {
			return err
		}
		load, err := runLoadCases(total)
		if err != nil {
			return err
		}
		report.Load = load
		if !*jsonOut && *outPath == "" {
			for _, lc := range load {
				fmt.Printf("%-28s %9.0f rps  p50 %5dus  p99 %6dus  304 %5.1f%%  %11d B-wire  %d err\n",
					lc.Name, lc.RPS, lc.P50Micros, lc.P99Micros, 100*lc.Ratio304, lc.BytesOnWire, lc.Errors)
			}
		}
	}
	if !*jsonOut && *outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath != "" {
		return os.WriteFile(*outPath, data, 0o644)
	}
	_, err = os.Stdout.Write(data)
	return err
}

// generalBenchSchema is the non-GOLD vocabulary the general-schema
// validation bench runs against: an abstract substitution head with two
// members, union and list attribute types, and a lax extension wildcard.
const generalBenchSchema = `<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="When">
    <xsd:union memberTypes="xsd:gYear">
      <xsd:simpleType><xsd:restriction base="xsd:string">
        <xsd:enumeration value="unknown"/>
      </xsd:restriction></xsd:simpleType>
    </xsd:union>
  </xsd:simpleType>
  <xsd:simpleType name="Tags"><xsd:list itemType="xsd:NMTOKEN"/></xsd:simpleType>
  <xsd:element name="publication" type="xsd:string" abstract="true"/>
  <xsd:element name="book" substitutionGroup="publication">
    <xsd:complexType>
      <xsd:sequence><xsd:element name="title" type="xsd:string"/></xsd:sequence>
      <xsd:attribute name="when" type="When" default="unknown"/>
      <xsd:attribute name="tags" type="Tags"/>
    </xsd:complexType>
  </xsd:element>
  <xsd:element name="journal" substitutionGroup="publication">
    <xsd:complexType>
      <xsd:sequence><xsd:element name="title" type="xsd:string"/></xsd:sequence>
      <xsd:attribute name="when" type="When" default="unknown"/>
    </xsd:complexType>
  </xsd:element>
  <xsd:element name="library">
    <xsd:complexType>
      <xsd:sequence>
        <xsd:element ref="publication" minOccurs="0" maxOccurs="unbounded"/>
        <xsd:any processContents="lax" minOccurs="0" maxOccurs="unbounded"/>
      </xsd:sequence>
      <xsd:anyAttribute processContents="skip"/>
    </xsd:complexType>
  </xsd:element>
</xsd:schema>`

// generalBenchDoc builds a library instance with n publications (books
// and journals alternating) plus wildcard-admitted extension elements.
func generalBenchDoc(n int) string {
	var b strings.Builder
	b.WriteString(`<library vendor="acme">`)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			fmt.Fprintf(&b, `<book when="1999" tags="classic sf t%d"><title>Book %d</title></book>`, i, i)
		} else {
			fmt.Fprintf(&b, `<journal when="unknown"><title>Journal %d</title></journal>`, i)
		}
	}
	for i := 0; i < n/10; i++ {
		fmt.Fprintf(&b, `<shelf capacity="%d"/>`, i)
	}
	b.WriteString(`</library>`)
	return b.String()
}
