package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"goldweb/internal/analysis"
	"goldweb/internal/analysis/verify"
	"goldweb/internal/core"
	"goldweb/internal/xsd"
	"goldweb/internal/xslt"
)

// cmdLint statically checks stylesheets (*.xsl) and model documents
// (*.xml) against an XML Schema — the embedded GOLD schema by default,
// or any schema graph named with -schema. With no arguments it lints
// the two built-in stylesheets and both sample models — the shipped
// corpus must always be clean. Directories are walked recursively.
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	doVerify := fs.Bool("verify", false, "print a per-stylesheet bytecode verification summary")
	schemaPath := fs.String("schema", "", "lint against this schema (xs:include/xs:import graphs resolve relative to it) instead of the built-in GOLD schema")
	if err := fs.Parse(args); err != nil {
		return err
	}
	schema, schemaDiag, err := resolveSchema(*schemaPath)
	if err != nil {
		if schemaDiag != nil {
			// Schema load failures are findings too: report GW002 with the
			// offending file's provenance in both output modes.
			return emitDiags([]analysis.Diagnostic{*schemaDiag}, *asJSON)
		}
		return err
	}
	var diags []analysis.Diagnostic
	var sheets []lintSheet
	if fs.NArg() == 0 {
		diags = lintBuiltins(schema)
		sheets = []lintSheet{
			{"builtin:single.xsl", []byte(core.SingleXSL)},
			{"builtin:multi.xsl", []byte(core.MultiXSL)},
		}
	} else {
		files, err := collectLintFiles(fs.Args())
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return fmt.Errorf("no .xsl or .xml files found under %s", strings.Join(fs.Args(), ", "))
		}
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				return err
			}
			if strings.HasSuffix(f, ".xsl") || strings.HasSuffix(f, ".xslt") {
				diags = append(diags, analysis.LintStylesheet(f, src, schema)...)
				sheets = append(sheets, lintSheet{f, src})
			} else {
				diags = append(diags, analysis.LintModelSource(f, src, schema)...)
			}
		}
	}
	analysis.Sort(diags)
	if !*asJSON && *doVerify {
		defer printVerifySummaries(sheets)
	}
	return emitDiags(diags, *asJSON)
}

// emitDiags prints diagnostics in the selected output mode and converts
// error-severity findings into a non-zero exit.
func emitDiags(diags []analysis.Diagnostic, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) == 0 {
			fmt.Println("ok: no findings")
		}
	}
	if analysis.HasErrors(diags) {
		return fmt.Errorf("%d findings (with errors)", len(diags))
	}
	return nil
}

// resolveSchema loads the -schema path (following include/import), or
// falls back to the embedded GOLD schema when the path is empty. Load
// failures also come back as a GW002 diagnostic carrying the offending
// file so callers can report them in the diagnostic stream.
func resolveSchema(path string) (*xsd.Schema, *analysis.Diagnostic, error) {
	if path == "" {
		s, err := core.Schema()
		if err != nil {
			return nil, nil, fmt.Errorf("loading built-in schema: %w", err)
		}
		return s, nil, nil
	}
	s, err := xsd.LoadSchemaFile(path)
	if err != nil {
		d := analysis.SchemaLoadDiagnostic(path, err)
		return nil, &d, fmt.Errorf("loading schema %s: %w", path, err)
	}
	return s, nil, nil
}

// lintSheet is one stylesheet the -verify summary reports on.
type lintSheet struct {
	name string
	src  []byte
}

// printVerifySummaries recompiles each linted stylesheet and reports the
// verification surface: instruction and expression counts plus the
// verifier's verdict. Findings themselves are already in the diagnostic
// stream; this is the at-a-glance proof of what was checked.
func printVerifySummaries(sheets []lintSheet) {
	for _, sh := range sheets {
		s, err := xslt.CompileStylesheetString(string(sh.src), xslt.CompileOptions{})
		if err != nil {
			fmt.Printf("verify: %s: not compiled (%v)\n", sh.name, err)
			continue
		}
		p := s.Program()
		ops, exprs := verify.Stats(p)
		findings := len(verify.Program(p)) + len(verify.Shape(p))
		verdict := "ok"
		if findings > 0 {
			verdict = fmt.Sprintf("%d findings", findings)
		}
		fmt.Printf("verify: %s: %d instructions, %d expressions verified — %s\n",
			sh.name, ops, exprs, verdict)
	}
}

func lintBuiltins(schema *xsd.Schema) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	diags = append(diags, analysis.LintStylesheet("builtin:single.xsl", []byte(core.SingleXSL), schema)...)
	diags = append(diags, analysis.LintStylesheet("builtin:multi.xsl", []byte(core.MultiXSL), schema)...)
	diags = append(diags, analysis.LintModelSource("sample:sales.xml", []byte(core.SampleSales().XMLString()), schema)...)
	diags = append(diags, analysis.LintModelSource("sample:hospital.xml", []byte(core.SampleHospital().XMLString()), schema)...)
	return diags
}

func collectLintFiles(paths []string) ([]string, error) {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				return nil
			}
			switch filepath.Ext(path) {
			case ".xsl", ".xslt", ".xml":
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return files, nil
}

// lintGate runs the model linter before serving and applies the -lint
// policy: "strict" refuses to start on error-severity findings, "warn"
// prints findings and continues, "off" skips the check. A nil schema
// means the embedded GOLD schema.
func lintGate(policy string, name string, src []byte, schema *xsd.Schema) error {
	switch policy {
	case "off":
		return nil
	case "strict", "warn":
	default:
		return fmt.Errorf("bad -lint %q (want strict, warn or off)", policy)
	}
	if schema == nil {
		var err error
		schema, err = core.Schema()
		if err != nil {
			return fmt.Errorf("loading built-in schema: %w", err)
		}
	}
	diags := analysis.LintModelSource(name, src, schema)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, "lint:", d)
	}
	if policy == "strict" && analysis.HasErrors(diags) {
		return fmt.Errorf("refusing to serve: %d lint findings (run with -lint=warn to override)", len(diags))
	}
	return nil
}
