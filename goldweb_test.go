package goldweb

import (
	"strings"
	"testing"

	"goldweb/internal/olap"
)

func TestFacadeEndToEnd(t *testing.T) {
	// Build through the facade.
	b := NewModel("Facade DW")
	d := b.Dimension("When").
		Key("when_id", "OID").
		Descriptor("when_label", "String")
	d.Level("Period").
		Key("period_id", "OID").
		Descriptor("period_label", "String")
	d.Rollup("Period")
	f := b.Fact("Events").Aggregates("When")
	f.Measure("hits", "Integer")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if problems := Validate(m); len(problems) != 0 {
		t.Fatalf("problems: %v", problems)
	}

	// XML round trip.
	xml := ModelXML(m)
	back, err := ParseModel(xml)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "Facade DW" {
		t.Errorf("round trip name = %q", back.Name)
	}
	if errs := ValidateXML(xml); errs != nil {
		t.Errorf("ValidateXML: %v", errs)
	}

	// Publication with link check.
	site, err := Publish(m, PublishOptions{Mode: MultiPage})
	if err != nil {
		t.Fatal(err)
	}
	if errs := CheckLinks(site); len(errs) != 0 {
		t.Errorf("links: %v", errs)
	}
	if len(site.HTMLPages()) < 3 {
		t.Errorf("pages = %d", len(site.HTMLPages()))
	}

	// OLAP through the facade.
	ds := NewDataset(m)
	w := ds.Dim("When")
	w.AddMember("Period", "p1", "AM")
	w.AddMember("", "t1", "9:00")
	w.MustLink("", "t1", "Period", "p1")
	ds.Fact("Events").MustAdd(olap.Row{
		Coords:   olap.Coord("When", "t1"),
		Measures: map[string]float64{"hits": 3},
	})
	res, err := ds.Execute(Query{
		Fact:    "Events",
		Aggs:    []olap.Agg{{Measure: "hits", Op: "SUM"}},
		GroupBy: []olap.GroupBy{{Dim: "When", Level: "Period"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Cell(0, "p1"); !ok || v != 3 {
		t.Errorf("cell = %v", v)
	}

	// SQL export.
	ddl, err := ExportSQL(m, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ddl, "CREATE TABLE fact_events (") {
		t.Errorf("ddl: %s", ddl)
	}
}

func TestFacadeValidateXMLFindsProblems(t *testing.T) {
	bad := strings.Replace(ModelXML(SampleSales()), `rolea="M"`, `rolea="banana"`, 1)
	if errs := ValidateXML(bad); len(errs) == 0 {
		t.Fatal("invalid XML accepted")
	}
}

func TestFacadeSchemaTree(t *testing.T) {
	tree := SchemaTree(true)
	if !strings.Contains(tree, "goldmodel") || !strings.Contains(tree, "@id : xsd:ID (required)") {
		t.Errorf("tree: %.200s", tree)
	}
}

func TestFacadeSamplesAndServer(t *testing.T) {
	if SampleSales() == nil || SampleHospital() == nil {
		t.Fatal("samples missing")
	}
	if NewServer(SampleSales()) == nil {
		t.Fatal("server constructor failed")
	}
	if _, err := ParseXML("<a><b/></a>"); err != nil {
		t.Fatal(err)
	}
	if PrettyXML(SampleSales()) == "" {
		t.Fatal("pretty empty")
	}
}

func TestFacadeExportCWM(t *testing.T) {
	out := ExportCWM(SampleSales())
	if !strings.Contains(out, "<CWMOLAP:Cube") {
		t.Errorf("cwm: %.120s", out)
	}
}

func TestFacadeLint(t *testing.T) {
	if diags := LintModel("sales.xml", []byte(ModelXML(SampleSales()))); len(diags) != 0 {
		t.Errorf("clean model: %v", diags)
	}
	diags := LintStylesheet("bad.xsl", []byte(`<?xml version="1.0"?>
<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">
  <xsl:template match="widget"/>
</xsl:stylesheet>`))
	if !DiagnosticsHaveErrors(diags) {
		t.Fatalf("expected error-severity findings, got %v", diags)
	}
	if diags[0].Severity != SevError || diags[0].Code != "GW101" {
		t.Errorf("finding: %+v", diags[0])
	}
}
