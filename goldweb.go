// Package goldweb reproduces the system of Luján-Mora, Medina & Trujillo,
// "A Web-Oriented Approach to Manage Multidimensional Models through XML
// Schemas and XSLT" (EDBT 2002 Workshops): an object-oriented conceptual
// multidimensional metamodel, its XML representation validated by an XML
// Schema, and XSLT-driven web presentations — implemented end to end in
// Go on the standard library, including the XML DOM, XPath 1.0,
// XSLT 1.0/1.1 and XML Schema engines the original system borrowed from
// MSXML, Saxon and Xerces.
//
// The facade re-exports the most used surface; the full API lives in the
// internal packages:
//
//	internal/core    — the metamodel, builder, schema and stylesheets
//	internal/xmldom  — XML document object model (parser + serializers)
//	internal/xpath   — XPath 1.0 engine (expressions and match patterns)
//	internal/xslt    — XSLT 1.0 processor with xsl:document (1.1)
//	internal/xsd     — XML Schema validator and quality checker
//	internal/htmlgen — publication pipeline (single/multi page, Fig. 5/6)
//	internal/olap    — multidimensional engine executing cube classes
//	internal/star    — relational star/snowflake export (DDL + DML)
//	internal/server  — the client-server web architecture of §6
//	internal/catalog — resilient multi-model registry over internal/server
package goldweb

import (
	"goldweb/internal/analysis"
	"goldweb/internal/catalog"
	"goldweb/internal/core"
	"goldweb/internal/cwm"
	"goldweb/internal/htmlgen"
	"goldweb/internal/olap"
	"goldweb/internal/server"
	"goldweb/internal/star"
	"goldweb/internal/xmldom"
	"goldweb/internal/xsd"
)

// Conceptual metamodel types.
type (
	// Model is a conceptual multidimensional model.
	Model = core.Model
	// FactClass, DimClass, Level, CubeClass are the model's classes.
	FactClass = core.FactClass
	DimClass  = core.DimClass
	Level     = core.Level
	CubeClass = core.CubeClass
	// ModelBuilder is the fluent construction API.
	ModelBuilder = core.ModelBuilder
	// Operator is a slice comparison operator (EQ, LT, LIKE, ...).
	Operator = core.Operator
	// Multiplicity is a UML role multiplicity (0, 1, M, 1..M).
	Multiplicity = core.Multiplicity
)

// Publication types.
type (
	// Site is a generated web presentation.
	Site = htmlgen.Site
	// PublishOptions configure presentation generation.
	PublishOptions = htmlgen.Options
	// PublishMode selects single- or multi-page output.
	PublishMode = htmlgen.Mode
)

// Analysis types.
type (
	// Dataset holds instance data for a model.
	Dataset = olap.Dataset
	// Query is an executable cube query; Result its table.
	Query  = olap.Query
	Result = olap.Result
)

// The two presentation modes of the paper's §4.
const (
	SinglePage = htmlgen.SinglePage
	MultiPage  = htmlgen.MultiPage
)

// Static analysis types.
type (
	// Diagnostic is one positioned finding from the linter.
	Diagnostic = analysis.Diagnostic
	// DiagSeverity classifies a Diagnostic (error, warning, info).
	DiagSeverity = analysis.Severity
)

// Diagnostic severities.
const (
	SevError   = analysis.SevError
	SevWarning = analysis.SevWarning
	SevInfo    = analysis.SevInfo
)

// Schema is a compiled XML Schema (the validator's unit of work). The
// embedded GOLD schema governs model documents by default; LoadSchema
// compiles any other schema, including multi-file import/include graphs.
type Schema = xsd.Schema

// LoadSchema reads and compiles the schema at path, resolving its
// xs:include and xs:import graph relative to the file, with cycle
// detection and per-file error provenance. The result plugs into
// ValidateXMLAgainst, LintStylesheetAgainst and LintModelAgainst, and
// into CatalogOptions.Schema for serving non-GOLD vocabularies.
func LoadSchema(path string) (*Schema, error) { return xsd.LoadSchemaFile(path) }

// LintStylesheet statically checks an XSLT stylesheet against the GOLD
// XML Schema: every XPath pattern, select and attribute value template
// is cross-checked against the schema's content model, and unreachable
// templates, unused declarations and dangling references are reported.
// The name is used only for diagnostic positions.
func LintStylesheet(name string, src []byte) []Diagnostic {
	return analysis.LintStylesheet(name, src, core.MustSchema())
}

// LintStylesheetAgainst is LintStylesheet parameterized by schema: the
// same schema-aware analysis, driven by any loaded schema's content
// model. Substitution groups widen dispatch sets; xs:any wildcards make
// the checks conservatively silent where the schema is open.
func LintStylesheetAgainst(name string, src []byte, s *Schema) []Diagnostic {
	return analysis.LintStylesheet(name, src, s)
}

// LintModel statically checks a model document: structural validation
// against the XML Schema plus re-evaluation of its key/keyref identity
// constraints with enriched, positioned messages.
func LintModel(name string, src []byte) []Diagnostic {
	return analysis.LintModelSource(name, src, core.MustSchema())
}

// LintModelAgainst is LintModel parameterized by schema: it validates
// and cross-checks the document against any loaded schema instead of
// the embedded GOLD one.
func LintModelAgainst(name string, src []byte, s *Schema) []Diagnostic {
	return analysis.LintModelSource(name, src, s)
}

// DiagnosticsHaveErrors reports whether any finding is error-severity.
func DiagnosticsHaveErrors(diags []Diagnostic) bool { return analysis.HasErrors(diags) }

// NewModel starts building a model (the CASE tool's programmatic face).
func NewModel(name string) *ModelBuilder { return core.NewModel(name) }

// SampleSales returns the paper's running example (sales tickets).
func SampleSales() *Model { return core.SampleSales() }

// SampleHospital returns the advanced example with two fact classes,
// a many-to-many dimension and a non-strict complete hierarchy.
func SampleHospital() *Model { return core.SampleHospital() }

// ParseModel reads a goldmodel XML document into a Model.
func ParseModel(src string) (*Model, error) { return core.ModelFromXMLString(src) }

// ModelXML renders a model as its canonical XML document.
func ModelXML(m *Model) string { return m.XMLString() }

// Validate checks a model against both the canonical XML Schema (via its
// XML form) and the metamodel's semantic constraints, returning
// human-readable problems (nil = valid).
func Validate(m *Model) []string {
	var out []string
	for _, e := range core.ValidateModel(m) {
		out = append(out, "schema: "+e.Error())
	}
	for _, e := range m.Validate() {
		out = append(out, "model: "+e.Error())
	}
	return out
}

// ValidateXML validates raw XML text against the canonical schema.
func ValidateXML(src string) []string {
	return ValidateXMLAgainst(src, core.MustSchema())
}

// ValidateXMLAgainst validates raw XML text against any loaded schema,
// returning human-readable problems (nil = valid).
func ValidateXMLAgainst(src string, s *Schema) []string {
	errs := s.ValidateString(src, xsd.ValidateOptions{ApplyDefaults: true})
	out := make([]string, len(errs))
	for i, e := range errs {
		out[i] = e.Error()
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Publish renders a model as a web presentation. Set
// PublishOptions.Workers to fan multi-page serialization over a worker
// pool; output is byte-identical at any worker count.
func Publish(m *Model, opts PublishOptions) (*Site, error) { return htmlgen.Publish(m, opts) }

// PublishPerFact renders one focused presentation per fact class (the
// per-fact views of Fig. 5), keyed by fact id. The model document is
// validated and indexed once, then the publications run concurrently on
// the PublishOptions.Workers pool over the shared frozen document.
func PublishPerFact(m *Model, opts PublishOptions) (map[string]*Site, error) {
	return htmlgen.PublishPerFact(m, opts)
}

// FreezeXML indexes a parsed XML tree and marks it immutable: document
// order becomes a stamp comparison, id() and descendant name queries
// answer from per-document indexes, and the tree becomes safe to share
// across goroutines (e.g. one document, many concurrent transforms).
// Mutating a frozen tree panics; use Editable() for a mutable deep copy.
func FreezeXML(n *xmldom.Node) { xmldom.Freeze(n) }

// CheckLinks verifies every internal link of a generated site.
func CheckLinks(s *Site) []error {
	var out []error
	for _, e := range htmlgen.CheckLinks(s) {
		out = append(out, e)
	}
	return out
}

// Serving types and options (the hardened §6 architecture).
type (
	// Server is the HTTP server performing server-side XSLT.
	Server = server.Server
	// ServerOption tunes the server's resilience knobs.
	ServerOption = server.Option
)

// Server resilience options, re-exported from internal/server.
var (
	// WithRequestTimeout bounds one request's wall-clock time.
	WithRequestTimeout = server.WithRequestTimeout
	// WithMaxInflight sheds load with 503 + Retry-After beyond n
	// concurrent requests.
	WithMaxInflight = server.WithMaxInflight
	// WithCacheSize bounds the presentation cache (LRU entries).
	WithCacheSize = server.WithCacheSize
	// WithCacheBytes bounds the presentation cache by summed artifact
	// bytes (LRU; negative disables the byte budget).
	WithCacheBytes = server.WithCacheBytes
	// WithCompression toggles precompressed gzip variants for
	// Accept-Encoding clients.
	WithCompression = server.WithCompression
)

// NewServer creates the HTTP server performing server-side XSLT (§6),
// hardened with panic recovery, per-request timeouts, load shedding and
// a bounded singleflight presentation cache (see internal/server).
func NewServer(m *Model, opts ...ServerOption) *Server { return server.New(m, opts...) }

// Multi-model catalog types (the resilient registry in front of
// internal/server): staged hot swaps with rollback, a retrying reloader
// under a per-model circuit breaker, and graceful degradation to
// last-good snapshots.
type (
	// Catalog is a registry of named models, each with its own server.
	Catalog = catalog.Catalog
	// CatalogOptions tunes the catalog's resilience knobs.
	CatalogOptions = catalog.Options
	// CatalogEvent is a swap/retry/breaker lifecycle notification.
	CatalogEvent = catalog.Event
	// CatalogModelStatus is one model's row in Status and /readyz.
	CatalogModelStatus = catalog.ModelStatus
)

// NewCatalog creates a multi-model catalog. Register models with Add;
// serve them with Handler or Serve.
func NewCatalog(opts CatalogOptions) *Catalog { return catalog.New(opts) }

// DirModelLoader loads model XML by name from dir (name.xml), for use
// as CatalogOptions.Loader.
func DirModelLoader(dir string) catalog.LoadFunc { return catalog.DirLoader(dir) }

// NewDataset prepares an empty OLAP dataset for a model.
func NewDataset(m *Model) *Dataset { return olap.NewDataset(m) }

// ExportSQL generates the relational schema (star or snowflake DDL) for a
// model — the paper's export into a target OLAP tool.
func ExportSQL(m *Model, snowflake bool) (string, error) {
	style := star.Star
	if snowflake {
		style = star.Snowflake
	}
	e, err := star.Generate(m, star.Options{Style: style})
	if err != nil {
		return "", err
	}
	return e.DDL(), nil
}

// ExportCWM renders the model as a CWM OLAP XMI interchange document
// (the paper's §6 future work), with the MD properties CWM cannot express
// carried as TaggedValue extensions.
func ExportCWM(m *Model) string { return cwm.ExportString(m) }

// SchemaTree renders the canonical XML Schema as the ASCII tree of Fig. 2.
func SchemaTree(showAttributes bool) string {
	return xsd.Tree(core.MustSchema(), xsd.TreeOptions{ShowAttributes: showAttributes})
}

// PrettyXML pretty-prints a model document (the browser raw view, Fig. 4).
func PrettyXML(m *Model) string { return m.PrettyXML() }

// ParseXML parses any XML text into the project's DOM; exposed so
// downstream users can run their own XPath queries or transforms.
// Resource consumption is bounded by xmldom.DefaultLimits.
func ParseXML(src string) (*xmldom.Node, error) { return xmldom.ParseString(src) }

// XMLLimits bound what a single XML parse may consume (nesting depth,
// input bytes, attributes per element); zero fields mean "no limit".
type XMLLimits = xmldom.Limits

// ParseXMLWithLimits parses untrusted XML under explicit resource
// limits, so hostile documents (10k-deep nests, attribute bombs,
// oversized bodies) fail fast instead of exhausting the process.
func ParseXMLWithLimits(src string, lim XMLLimits) (*xmldom.Node, error) {
	return xmldom.ParseStringWithLimits(src, lim)
}
